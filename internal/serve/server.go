package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"overd/internal/metrics"
	"overd/internal/span"
)

// Config sizes the server. Zero values pick modest defaults.
type Config struct {
	// Workers is the worker-pool size: how many jobs solve concurrently.
	// Default 2.
	Workers int
	// QueueDepth caps the number of admitted-but-not-started jobs across
	// all tenants; past it POST /jobs returns 429 + Retry-After. Default 64.
	QueueDepth int
	// CacheBytes is the in-memory result-cache budget. Default 64 MiB.
	CacheBytes int64
	// CacheDir optionally adds a persistent write-through cache tier.
	CacheDir string
	// JournalDir enables the durable job journal: every admitted job is
	// fsync'd to an append-only WAL before Submit acknowledges it, and
	// unfinished jobs are re-queued (in admission order) on the next
	// NewServer against the same directory. Empty means no journal — a
	// crash loses queued and running work, as before.
	JournalDir string
	// Limits caps per-job resource requests (nodes, steps, scale). Zero
	// fields fall back to DefaultLimits.
	Limits Limits
	// RetryBackoff is the fixed wait before the single retry of an
	// infrastructure-classified failure (a runner panic). Deterministic —
	// no jitter — so test schedules replay. Default 100ms.
	RetryBackoff time.Duration
	// EventWriteTimeout bounds each write to a GET /events subscriber; a
	// client slower than this is dropped instead of pinning the handler.
	// Default 10s.
	EventWriteTimeout time.Duration
	// EventHeartbeat is the idle interval after which a GET /events stream
	// emits a synthetic heartbeat event, so a subscriber can tell an idle
	// stream from a dead connection. Heartbeats are synthesized per
	// subscriber at stream time and never stored in the job's event log.
	// Default 15s.
	EventHeartbeat time.Duration
	// FlightRecorder sizes the wall-clock span flight recorder: the last N
	// finished jobs keep their span records resident for GET
	// /jobs/{id}/spans and the /status failure context. 0 picks
	// span.DefaultCapacity (64); negative disables the span layer entirely
	// (zero cost — see internal/span).
	FlightRecorder int
	// Logf, when non-nil, receives operational log lines (panic stacks,
	// journal trouble, replay notes). The sanitized errMsg shown to
	// clients never includes a stack; the full detail lands here.
	Logf func(format string, args ...any)
	// Runner executes jobs; nil means the real pipeline (RunJob).
	Runner Runner
}

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCancelled JobStatus = "cancelled"
)

// ErrQueueFull is returned by Submit when admission control rejects a job;
// RetryAfter is the suggested client backoff in seconds, scaled to the
// current queue depth and the mean recent job duration.
type ErrQueueFull struct {
	Depth      int
	RetryAfter int
}

func (e ErrQueueFull) Error() string {
	return fmt.Sprintf("serve: queue full (%d jobs waiting); retry in %ds", e.Depth, e.RetryAfter)
}

// ErrWontMeetDeadline is returned by Submit when the estimated queue wait
// alone already exceeds the job's deadline: queueing it would be admitting
// work the server knows it will throw away.
type ErrWontMeetDeadline struct {
	EstWait    float64 // seconds until a worker would pick the job up
	Deadline   float64 // the job's wall-clock budget in seconds
	RetryAfter int
}

func (e ErrWontMeetDeadline) Error() string {
	return fmt.Sprintf("serve: estimated queue wait %.1fs exceeds the job's %.1fs deadline; retry in %ds",
		e.EstWait, e.Deadline, e.RetryAfter)
}

// ErrShuttingDown is returned by Submit once Shutdown has begun.
var ErrShuttingDown = errors.New("serve: server is shutting down")

// ErrJournalUnavailable wraps a journal append failure at admission: the
// job was NOT accepted, because accepting work that would not survive a
// crash breaks the durability contract the journal exists to keep.
var ErrJournalUnavailable = errors.New("serve: job journal unavailable")

// ErrUnknownJob is returned by Cancel for an id the server never issued.
var ErrUnknownJob = errors.New("serve: unknown job")

// ErrJobFinished is returned by Cancel when the job already reached a
// terminal state.
var ErrJobFinished = errors.New("serve: job already finished")

// jobState is one submitted job's record.
type jobState struct {
	id     string
	hash   string
	tenant string
	job    Job
	seq    int // admission order, for queue-position estimates

	status   JobStatus
	cached   bool
	replayed bool // re-queued from the journal after a restart
	attempts int  // runner invocations (>1 after an infrastructure retry)
	errMsg   string
	art      *Artifacts

	admitted  time.Time
	started   time.Time
	cancelReq bool               // DELETE arrived while running
	cancel    context.CancelFunc // cancels the running attempt's context
	ctx       context.Context

	events *eventLog
	done   chan struct{} // closed on done/failed/cancelled

	// spans is the job's live wall-clock span record (nil when the span
	// layer is disabled). Cleared at finish: the flight recorder's bounded
	// ring owns the finished record, so a long-lived jobs map cannot grow
	// span retention without bound. Atomic because event-stream handlers
	// read it while finalize clears it.
	spans atomic.Pointer[span.Record]
}

// Server is the multi-tenant simulation job service: admission control, a
// bounded worker pool fed round-robin across per-tenant FIFO queues, a
// content-addressed result cache, and (optionally) a durable job journal
// in front of it all.
type Server struct {
	cfg     Config
	cache   *Cache
	reg     *metrics.Registry
	tenants *metrics.Interner

	// The wall-clock observability plane: spans + flight recorder (nil when
	// Config.FlightRecorder < 0), the per-stage/per-job latency histograms
	// it feeds, and the incarnation id that tags this process's log lines.
	flight      *span.Recorder
	outcomes    *metrics.Interner
	stageH      metrics.Histogram
	jobH        metrics.Histogram
	started     time.Time
	incarnation string

	accepted   metrics.Counter
	rejected   metrics.Counter
	shed       metrics.Counter
	deduped    metrics.Counter
	failed     metrics.Counter
	cancelled  metrics.Counter
	panics     metrics.Counter
	retries    metrics.Counter
	replayedC  metrics.Counter
	steps      metrics.Counter
	served     metrics.Counter // per tenant
	hits       metrics.Counter
	misses     metrics.Counter
	evict      metrics.Counter
	subDropped metrics.Counter
	depthG     metrics.Gauge
	runningG   metrics.Gauge
	entriesG   metrics.Gauge
	bytesG     metrics.Gauge
	subsG      metrics.Gauge

	mu          sync.Mutex
	cond        *sync.Cond
	jrnl        *journal
	jobs        map[string]*jobState
	inflight    map[string]*jobState // hash → queued-or-running job
	queues      map[string][]*jobState
	ring        []string // tenant round-robin order
	rr          int
	queued      int
	running     int
	runningBy   map[string]int // tenant → jobs currently on a worker
	nextID      int
	lastEvict   int64
	durs        []float64 // ring of recent job wall durations (seconds)
	durNext     int
	subscribers int
	jrnlAppends int64  // successful journal appends (admit + done markers)
	jrnlFails   int64  // failed journal append attempts
	jrnlLastErr string // most recent journal append error
	failures    []failureNote
	failNext    int
	closed      bool
	killed      bool // simulated kill -9: workers abandon in place
	workersRun  bool
	wg          sync.WaitGroup
}

// failureNote is one entry of the bounded recent-failure ring surfaced on
// GET /status: enough context to pivot to GET /jobs/{id}/spans.
type failureNote struct {
	ID     string    `json:"id"`
	Tenant string    `json:"tenant"`
	Status JobStatus `json:"status"`
	Error  string    `json:"error,omitempty"`
	At     time.Time `json:"at"`
}

// failureRingCap bounds the /status recent-failure ring.
const failureRingCap = 16

// recordFailureLocked pushes one failed/cancelled job into the ring.
func (s *Server) recordFailureLocked(js *jobState) {
	n := failureNote{ID: js.id, Tenant: js.tenant, Status: js.status, Error: js.errMsg, At: time.Now()}
	if len(s.failures) < failureRingCap {
		s.failures = append(s.failures, n)
		s.failNext = len(s.failures) % failureRingCap
		return
	}
	s.failures[s.failNext] = n
	s.failNext = (s.failNext + 1) % failureRingCap
}

// wallBuckets lay out the service latency histograms: jobs span microsecond
// cache hits to multi-minute solves, so the buckets cover 10µs..300s.
var wallBuckets = []float64{
	1e-5, 1e-4, 1e-3, 5e-3, 2.5e-2, 0.1, 0.5, 1, 2.5, 10, 30, 120, 300,
}

// durWindow is how many recent job durations feed the queue-wait estimate.
const durWindow = 32

// NewServer builds a server (workers not yet started; call Start). With
// Config.JournalDir set it replays the journal first: admitted jobs whose
// results are now cached complete immediately, the rest re-queue in their
// original admission order under their original ids.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.EventWriteTimeout <= 0 {
		cfg.EventWriteTimeout = 10 * time.Second
	}
	if cfg.EventHeartbeat <= 0 {
		cfg.EventHeartbeat = 15 * time.Second
	}
	if cfg.Runner == nil {
		cfg.Runner = RunJob
	}
	cfg.Limits = cfg.Limits.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     NewCache(cfg.CacheBytes, cfg.CacheDir),
		reg:       metrics.New(),
		tenants:   metrics.NewInterner(),
		outcomes:  metrics.NewInterner(),
		jobs:      make(map[string]*jobState),
		inflight:  make(map[string]*jobState),
		queues:    make(map[string][]*jobState),
		runningBy: make(map[string]int),
		started:   time.Now(),
	}
	s.incarnation = fmt.Sprintf("%d-%x", os.Getpid(), s.started.UnixNano())
	if cfg.FlightRecorder >= 0 {
		s.flight = span.NewRecorder(cfg.FlightRecorder)
		s.flight.OnFinish = s.observeFinished
	}
	s.cond = sync.NewCond(&s.mu)
	s.reg.Reset(1)
	g := func(name, help string) metrics.Gauge {
		return s.reg.Gauge(name, metrics.Opts{Help: help, Global: true})
	}
	c := func(name, help string) metrics.Counter {
		return s.reg.Counter(name, metrics.Opts{Help: help, Global: true})
	}
	s.accepted = c("overd_serve_jobs_accepted_total", "jobs admitted (including cache hits and dedups)")
	s.rejected = c("overd_serve_jobs_rejected_total", "jobs refused by admission control (429)")
	s.shed = c("overd_serve_jobs_shed_total", "jobs refused because the estimated queue wait exceeded their deadline (503)")
	s.deduped = c("overd_serve_jobs_deduped_total", "submissions coalesced onto an identical in-flight job")
	s.failed = c("overd_serve_jobs_failed_total", "jobs whose run returned an error")
	s.cancelled = c("overd_serve_jobs_cancelled_total", "jobs cancelled by request or deadline")
	s.panics = c("overd_serve_panics_total", "runner panics caught and isolated by worker supervision")
	s.retries = c("overd_serve_retries_total", "infrastructure-classified failures given their one retry")
	s.replayedC = c("overd_serve_jobs_replayed_total", "journal admits re-queued at startup")
	s.steps = c("overd_serve_solver_steps_total", "solver timesteps actually executed (cache hits add zero)")
	s.served = s.reg.Counter("overd_serve_jobs_served_total", metrics.Opts{
		Help: "completed jobs per tenant (cached results included)", Global: true,
		Labels: []metrics.Label{{Name: "tenant", Namer: s.tenants.Name}},
	})
	s.hits = c("overd_serve_cache_hits_total", "result-cache hits")
	s.misses = c("overd_serve_cache_misses_total", "result-cache misses")
	s.evict = c("overd_serve_cache_evictions_total", "result-cache LRU evictions")
	s.subDropped = c("overd_serve_event_subscribers_dropped_total", "event-stream subscribers dropped for slow or failed writes")
	outcomeL := metrics.Label{Name: "outcome", Namer: s.outcomes.Name}
	s.stageH = s.reg.Histogram("overd_serve_stage_seconds", metrics.Opts{
		Help: "wall-clock seconds per job lifecycle stage (span layer)", Global: true,
		Buckets: wallBuckets,
		Labels: []metrics.Label{
			{Name: "stage", Namer: func(i int) string { return span.Stage(i).String() }},
			outcomeL,
		},
	})
	s.jobH = s.reg.Histogram("overd_serve_job_seconds", metrics.Opts{
		Help: "end-to-end wall-clock seconds per job, admission to terminal state (span layer)",
		Global: true, Buckets: wallBuckets, Labels: []metrics.Label{outcomeL},
	})
	s.depthG = g("overd_serve_queue_depth", "jobs admitted and waiting for a worker")
	s.runningG = g("overd_serve_jobs_running", "jobs currently on a worker")
	s.entriesG = g("overd_serve_cache_entries", "resident result-cache entries")
	s.bytesG = g("overd_serve_cache_bytes", "resident result-cache bytes")
	s.subsG = g("overd_serve_event_subscribers", "open GET /events streams")

	if cfg.JournalDir != "" {
		jrnl, pending, maxSeq, err := openJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		s.jrnl = jrnl
		s.nextID = maxSeq
		if err := s.replay(pending); err != nil {
			jrnl.close()
			return nil, err
		}
	}
	return s, nil
}

// replay re-admits the journal's unfinished jobs. Runs before Start, so no
// worker races it; it still takes s.mu because journalDoneLocked expects
// it. A replayed job whose hash is now cached — the crash landed between
// the cache write and the done marker — completes on the spot.
func (s *Server) replay(pending []journalRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range pending {
		var job Job
		if err := json.Unmarshal(r.Job, &job); err != nil {
			return fmt.Errorf("serve: journal job %s: %v", r.ID, err)
		}
		job.Tenant = r.Tenant
		js := &jobState{
			id: r.ID, hash: job.Hash(), tenant: r.Tenant, job: job,
			seq: r.Seq, replayed: true, admitted: time.Now(),
			events: newEventLog(), done: make(chan struct{}),
		}
		if js.tenant == "" {
			js.tenant = "anonymous"
		}
		s.jobs[js.id] = js
		js.spans.Store(s.flight.StartAt(js.id, js.tenant, job.Balancer, js.admitted))
		rec := js.spans.Load()
		s.replayedC.Add(0, 1)
		js.events.append(Event{Type: "queued"})
		js.events.append(Event{Type: "replayed"})
		ct0 := time.Now()
		art, hit := s.cache.Get(js.hash)
		rec.AddStage(span.StageCache, ct0, time.Now())
		if hit {
			// The crash landed between the cache write and the done marker;
			// the replay completes on the spot.
			rec.SetCache(string(CacheHit))
			js.status = StatusDone
			js.cached = true
			js.art = art
			s.hits.Add(0, 1)
			s.served.Add1(0, s.tenants.ID(js.tenant), 1)
			js.events.append(Event{Type: "done", Cached: true})
			js.events.closeLog()
			close(js.done)
			s.journalDoneLocked(js, StatusDone, "")
			rec.Finish(string(StatusDone))
			js.spans.Store(nil)
			continue
		}
		rec.SetCache(string(CacheMiss))
		js.status = StatusQueued
		s.inflight[js.hash] = js
		if _, known := s.queues[js.tenant]; !known {
			s.ring = append(s.ring, js.tenant)
		}
		s.queues[js.tenant] = append(s.queues[js.tenant], js)
		s.queued++
		s.logEvent(js, "journal-replay", kv{"seq", fmt.Sprintf("%d", js.seq)})
	}
	return nil
}

// observeFinished is the flight recorder's OnFinish hook: every finished
// record feeds the per-stage and end-to-end wall-clock latency histograms,
// labeled by stage and terminal outcome.
func (s *Server) observeFinished(rec *span.Record) {
	out := s.outcomes.ID(rec.Outcome())
	s.jobH.Observe1(0, out, rec.Duration().Seconds())
	for _, sp := range rec.Spans() {
		d := sp.End.Sub(sp.Start).Seconds()
		if d < 0 {
			d = 0 // the wall clock can step backwards; a negative latency only misleads
		}
		s.stageH.Observe2(0, int(sp.Stage), out, d)
	}
}

// Registry exposes the server's own metrics registry (the /metrics page).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Start launches the worker pool. Safe to call once.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.workersRun {
		return
	}
	s.workersRun = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Shutdown stops admission, wakes idle workers, and waits — up to the
// context's deadline — for queued and running jobs to drain. On a clean
// drain the journal (now holding only terminal markers) is closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		s.mu.Lock()
		if s.jrnl != nil && !s.killed {
			s.jrnl.close()
			s.jrnl = nil
		}
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CacheStatus classifies what Submit found for a job's content address.
type CacheStatus string

const (
	CacheHit      CacheStatus = "hit"      // served from the result cache
	CacheInflight CacheStatus = "inflight" // identical job already queued/running
	CacheMiss     CacheStatus = "miss"     // fresh work admitted
)

// Submit admits a normalized job (Tenant already resolved). On a cache hit
// the returned job is already done and carries the cached artifacts; on an
// inflight dedup it is the existing job; otherwise it is journaled (when a
// journal is configured), then queued. Deadline-aware shedding runs before
// queueing: a job whose estimated queue wait exceeds its own deadline is
// refused with ErrWontMeetDeadline rather than queued as doomed work.
func (s *Server) Submit(job Job) (*jobState, CacheStatus, error) {
	t0 := time.Now() // root-span start: the instant the job entered the server
	hash := job.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, "", ErrShuttingDown
	}
	ct0 := time.Now()
	art, hit := s.cache.Get(hash)
	ct1 := time.Now()
	if hit {
		s.hits.Add(0, 1)
		s.accepted.Add(0, 1)
		js := s.newJobLocked(job, hash)
		js.spans.Store(s.flight.StartAt(js.id, js.tenant, job.Balancer, t0))
		rec := js.spans.Load()
		rec.SetCache(string(CacheHit))
		rec.AddStage(span.StageCache, ct0, ct1)
		js.status = StatusDone
		js.cached = true
		js.art = art
		js.events.append(Event{Type: "queued"})
		js.events.append(Event{Type: "done", Cached: true})
		js.events.closeLog()
		close(js.done)
		s.served.Add1(0, s.tenants.ID(js.tenant), 1)
		rec.AddStage(span.StageAdmit, t0, time.Now())
		rec.Finish(string(StatusDone))
		js.spans.Store(nil)
		return js, CacheHit, nil
	}
	if ex, ok := s.inflight[hash]; ok {
		s.deduped.Add(0, 1)
		s.annotate(ex, "dedup", kv{"hash", hash[:12]})
		return ex, CacheInflight, nil
	}
	if s.queued >= s.cfg.QueueDepth {
		s.rejected.Add(0, 1)
		return nil, "", ErrQueueFull{Depth: s.queued, RetryAfter: s.retryAfterLocked()}
	}
	if job.Deadline > 0 {
		if est := s.estQueueWaitLocked(); est > job.Deadline {
			s.shed.Add(0, 1)
			return nil, "", ErrWontMeetDeadline{
				EstWait: est, Deadline: job.Deadline, RetryAfter: s.retryAfterLocked(),
			}
		}
	}
	js := s.newJobLocked(job, hash)
	js.spans.Store(s.flight.StartAt(js.id, js.tenant, job.Balancer, t0))
	rec := js.spans.Load()
	rec.SetCache(string(CacheMiss))
	rec.AddStage(span.StageCache, ct0, ct1)
	if s.jrnl != nil {
		jt0 := time.Now()
		err := s.journalAdmitLocked(js)
		rec.AddStage(span.StageJournal, jt0, time.Now())
		if err != nil {
			delete(s.jobs, js.id)
			rec.AddStage(span.StageAdmit, t0, time.Now())
			rec.Finish("rejected")
			js.spans.Store(nil)
			return nil, "", fmt.Errorf("%w: %v", ErrJournalUnavailable, err)
		}
	}
	s.misses.Add(0, 1)
	s.accepted.Add(0, 1)
	js.status = StatusQueued
	s.inflight[hash] = js
	if _, known := s.queues[js.tenant]; !known {
		s.ring = append(s.ring, js.tenant)
	}
	s.queues[js.tenant] = append(s.queues[js.tenant], js)
	s.queued++
	js.events.append(Event{Type: "queued"})
	rec.AddStage(span.StageAdmit, t0, time.Now())
	s.cond.Signal()
	return js, CacheMiss, nil
}

// journalAdmitLocked makes a job's admission durable. The job JSON is the
// normalized struct minus tenant (which rides in its own field) — unlike
// the canonical form it keeps deadline and max_steps, so a replayed job
// retains its budgets (the wall-clock deadline restarts from replay time;
// the original submission instant died with the process).
func (s *Server) journalAdmitLocked(js *jobState) error {
	j := js.job
	j.Tenant = ""
	b, err := json.Marshal(j)
	if err != nil {
		panic(fmt.Sprintf("serve: journal job marshal: %v", err))
	}
	rec := journalRecord{Type: "admit", Seq: js.seq, ID: js.id, Tenant: js.tenant, Job: b}
	if err := s.jrnl.append(rec); err == nil {
		s.jrnlAppends++
		return nil
	}
	// Journal I/O is infrastructure: one bounded retry, then refuse.
	s.jrnlFails++
	s.retries.Add(0, 1)
	err = s.jrnl.append(rec)
	if err != nil {
		s.jrnlFails++
		s.jrnlLastErr = err.Error()
		s.logEvent(js, "journal-admit-failed", kv{"error", err.Error()})
		return err
	}
	s.jrnlAppends++
	return nil
}

// journalDoneLocked records a job's terminal state. A failure here cannot
// un-finish the job; it means the journal may replay it after the next
// restart (at-least-once in this corner), where the cache check makes the
// re-completion free for done jobs.
func (s *Server) journalDoneLocked(js *jobState, status JobStatus, errMsg string) {
	if s.jrnl == nil || s.killed {
		return
	}
	rec := journalRecord{Type: "done", ID: js.id, Status: status, Error: errMsg}
	if err := s.jrnl.append(rec); err == nil {
		s.jrnlAppends++
		return
	}
	s.jrnlFails++
	s.retries.Add(0, 1)
	if err := s.jrnl.append(rec); err != nil {
		s.jrnlFails++
		s.jrnlLastErr = err.Error()
		s.logEvent(js, "journal-done-failed", kv{"status", string(status)}, kv{"error", err.Error()})
		return
	}
	s.jrnlAppends++
}

// newJobLocked allocates a job record under s.mu.
func (s *Server) newJobLocked(job Job, hash string) *jobState {
	s.nextID++
	js := &jobState{
		id:       fmt.Sprintf("j-%06d", s.nextID),
		hash:     hash,
		tenant:   job.Tenant,
		job:      job,
		seq:      s.nextID,
		admitted: time.Now(),
		events:   newEventLog(),
		done:     make(chan struct{}),
	}
	if js.tenant == "" {
		js.tenant = "anonymous"
	}
	s.jobs[js.id] = js
	return js
}

// Cancel stops a job: a queued job is removed from its queue and finished
// as cancelled on the spot; a running job has its context cancelled and
// finishes as cancelled at the solver's next step boundary. Terminal jobs
// return ErrJobFinished, unknown ids ErrUnknownJob.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	if !ok {
		return "", ErrUnknownJob
	}
	switch js.status {
	case StatusQueued:
		q := s.queues[js.tenant]
		for i, other := range q {
			if other == js {
				s.queues[js.tenant] = append(q[:i:i], q[i+1:]...)
				break
			}
		}
		s.queued--
		delete(s.inflight, js.hash)
		js.status = StatusCancelled
		js.errMsg = "cancelled by request"
		s.cancelled.Add(0, 1)
		s.journalDoneLocked(js, StatusCancelled, js.errMsg)
		js.events.append(Event{Type: "cancelled", Error: js.errMsg})
		js.events.closeLog()
		close(js.done)
		s.recordFailureLocked(js)
		rec := js.spans.Load()
		rec.Finish(string(StatusCancelled))
		js.spans.Store(nil)
		return StatusCancelled, nil
	case StatusRunning:
		js.cancelReq = true
		s.annotate(js, "cancel-requested")
		if js.cancel != nil {
			js.cancel()
		}
		return StatusRunning, nil
	default:
		return js.status, ErrJobFinished
	}
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	return js, ok
}

// meanDurLocked is the mean of the recent-duration ring; with no history
// yet it assumes one second per job, a deliberately modest guess that
// keeps early Retry-After advice small.
func (s *Server) meanDurLocked() float64 {
	if len(s.durs) == 0 {
		return 1.0
	}
	sum := 0.0
	for _, d := range s.durs {
		sum += d
	}
	return sum / float64(len(s.durs))
}

// recordDurLocked pushes one finished job's wall duration into the ring.
func (s *Server) recordDurLocked(d float64) {
	if len(s.durs) < durWindow {
		s.durs = append(s.durs, d)
		return
	}
	s.durs[s.durNext] = d
	s.durNext = (s.durNext + 1) % durWindow
}

// minEstJobDur floors the per-job duration used for deadline shedding. A
// ring full of near-zero durations (instant cache hits, stub runners)
// would otherwise estimate a zero wait for any backlog and quietly disable
// shedding entirely; no real solve finishes in under a second.
const minEstJobDur = 1.0

// estQueueWaitLocked estimates how long a job admitted now would wait for
// a worker: everything queued ahead of it, spread over the pool, at the
// mean recent duration (floored at minEstJobDur — the floor applies only
// here, so Retry-After advice still tracks the true mean).
func (s *Server) estQueueWaitLocked() float64 {
	mean := s.meanDurLocked()
	if mean < minEstJobDur {
		mean = minEstJobDur
	}
	return mean * float64(s.queued) / float64(s.cfg.Workers)
}

// retryAfterLocked turns the current backlog into honest backoff advice:
// the estimated time for the backlog plus one more job to clear, clamped
// to [1s, 15min].
func (s *Server) retryAfterLocked() int {
	est := s.meanDurLocked() * float64(s.queued+1) / float64(s.cfg.Workers)
	r := int(math.Ceil(est))
	if r < 1 {
		r = 1
	}
	if r > 900 {
		r = 900
	}
	return r
}

// queuePosition estimates how many admitted jobs precede js (by admission
// order; the round-robin scheduler may interleave tenants differently, but
// the number never grows). Returns -1 when js is not queued.
func (s *Server) queuePosition(js *jobState) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if js.status != StatusQueued {
		return -1
	}
	ahead := 0
	for _, q := range s.queues {
		for _, other := range q {
			if other.seq < js.seq {
				ahead++
			}
		}
	}
	return ahead
}

// dequeue blocks for the next job, rotating fairly across tenants: each
// pop advances the ring, so a tenant flooding its own FIFO cannot starve
// another tenant's single job. The popped job gets its run context here —
// cancellable, deadline-bounded when the job asked for one — so Cancel
// and kill can reach the attempt from outside. Returns nil when the
// server drained and closed (or was killed).
func (s *Server) dequeue() *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.killed {
			return nil
		}
		if s.queued > 0 {
			n := len(s.ring)
			for i := 0; i < n; i++ {
				tenant := s.ring[(s.rr+i)%n]
				q := s.queues[tenant]
				if len(q) == 0 {
					continue
				}
				js := q[0]
				s.queues[tenant] = q[1:]
				s.rr = (s.rr + i + 1) % n
				s.queued--
				s.running++
				s.runningBy[js.tenant]++
				js.status = StatusRunning
				js.started = time.Now()
				js.spans.Load().AddStage(span.StageQueue, js.admitted, js.started)
				if js.job.Deadline > 0 {
					// The budget started at admission; only the remainder
					// is available for the run itself.
					rem := js.job.Deadline - time.Since(js.admitted).Seconds()
					if rem < 0 {
						rem = 0
					}
					js.ctx, js.cancel = context.WithTimeout(
						context.Background(), time.Duration(rem*float64(time.Second)))
				} else {
					js.ctx, js.cancel = context.WithCancel(context.Background())
				}
				return js
			}
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// refreshGauges updates the point-in-time gauges before a scrape. The
// virtual-time stamp slot is 0: the server lives on the wall clock, not a
// simulated one.
func (s *Server) refreshGauges() {
	s.mu.Lock()
	queued, running, subs := s.queued, s.running, s.subscribers
	s.mu.Unlock()
	cs := s.cache.Stats()
	s.depthG.Set(0, float64(queued), 0)
	s.runningG.Set(0, float64(running), 0)
	s.entriesG.Set(0, float64(cs.Entries), 0)
	s.bytesG.Set(0, float64(cs.Bytes), 0)
	s.subsG.Set(0, float64(subs), 0)
}
