package serve

import (
	"context"
	"fmt"
	"sync"

	"overd/internal/metrics"
)

// Config sizes the server. Zero values pick modest defaults.
type Config struct {
	// Workers is the worker-pool size: how many jobs solve concurrently.
	// Default 2.
	Workers int
	// QueueDepth caps the number of admitted-but-not-started jobs across
	// all tenants; past it POST /jobs returns 429 + Retry-After. Default 64.
	QueueDepth int
	// CacheBytes is the in-memory result-cache budget. Default 64 MiB.
	CacheBytes int64
	// CacheDir optionally adds a persistent write-through cache tier.
	CacheDir string
	// Runner executes jobs; nil means the real pipeline (RunJob).
	Runner Runner
}

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
)

// ErrQueueFull is returned by Submit when admission control rejects a job;
// RetryAfter is the suggested client backoff in seconds.
type ErrQueueFull struct {
	Depth      int
	RetryAfter int
}

func (e ErrQueueFull) Error() string {
	return fmt.Sprintf("serve: queue full (%d jobs waiting); retry in %ds", e.Depth, e.RetryAfter)
}

// ErrShuttingDown is returned by Submit once Shutdown has begun.
var ErrShuttingDown = fmt.Errorf("serve: server is shutting down")

// jobState is one submitted job's record.
type jobState struct {
	id     string
	hash   string
	tenant string
	job    Job
	seq    int // admission order, for queue-position estimates

	status JobStatus
	cached bool
	errMsg string
	art    *Artifacts

	events *eventLog
	done   chan struct{} // closed on done/failed
}

// Server is the multi-tenant simulation job service: admission control, a
// bounded worker pool fed round-robin across per-tenant FIFO queues, and a
// content-addressed result cache in front of it all.
type Server struct {
	cfg     Config
	cache   *Cache
	reg     *metrics.Registry
	tenants *metrics.Interner

	accepted metrics.Counter
	rejected metrics.Counter
	deduped  metrics.Counter
	failed   metrics.Counter
	steps    metrics.Counter
	served   metrics.Counter // per tenant
	hits     metrics.Counter
	misses   metrics.Counter
	evict    metrics.Counter
	depthG   metrics.Gauge
	runningG metrics.Gauge
	entriesG metrics.Gauge
	bytesG   metrics.Gauge

	mu         sync.Mutex
	cond       *sync.Cond
	jobs       map[string]*jobState
	inflight   map[string]*jobState // hash → queued-or-running job
	queues     map[string][]*jobState
	ring       []string // tenant round-robin order
	rr         int
	queued     int
	running    int
	nextID     int
	lastEvict  int64
	closed     bool
	workersRun bool
	wg         sync.WaitGroup
}

// NewServer builds a server (workers not yet started; call Start).
func NewServer(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Runner == nil {
		cfg.Runner = RunJob
	}
	s := &Server{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheBytes, cfg.CacheDir),
		reg:      metrics.New(),
		tenants:  metrics.NewInterner(),
		jobs:     make(map[string]*jobState),
		inflight: make(map[string]*jobState),
		queues:   make(map[string][]*jobState),
	}
	s.cond = sync.NewCond(&s.mu)
	s.reg.Reset(1)
	g := func(name, help string) metrics.Gauge {
		return s.reg.Gauge(name, metrics.Opts{Help: help, Global: true})
	}
	c := func(name, help string) metrics.Counter {
		return s.reg.Counter(name, metrics.Opts{Help: help, Global: true})
	}
	s.accepted = c("overd_serve_jobs_accepted_total", "jobs admitted (including cache hits and dedups)")
	s.rejected = c("overd_serve_jobs_rejected_total", "jobs refused by admission control (429)")
	s.deduped = c("overd_serve_jobs_deduped_total", "submissions coalesced onto an identical in-flight job")
	s.failed = c("overd_serve_jobs_failed_total", "jobs whose run returned an error")
	s.steps = c("overd_serve_solver_steps_total", "solver timesteps actually executed (cache hits add zero)")
	s.served = s.reg.Counter("overd_serve_jobs_served_total", metrics.Opts{
		Help: "completed jobs per tenant (cached results included)", Global: true,
		Labels: []metrics.Label{{Name: "tenant", Namer: s.tenants.Name}},
	})
	s.hits = c("overd_serve_cache_hits_total", "result-cache hits")
	s.misses = c("overd_serve_cache_misses_total", "result-cache misses")
	s.evict = c("overd_serve_cache_evictions_total", "result-cache LRU evictions")
	s.depthG = g("overd_serve_queue_depth", "jobs admitted and waiting for a worker")
	s.runningG = g("overd_serve_jobs_running", "jobs currently on a worker")
	s.entriesG = g("overd_serve_cache_entries", "resident result-cache entries")
	s.bytesG = g("overd_serve_cache_bytes", "resident result-cache bytes")
	return s
}

// Registry exposes the server's own metrics registry (the /metrics page).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Start launches the worker pool. Safe to call once.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.workersRun {
		return
	}
	s.workersRun = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Shutdown stops admission, wakes idle workers, and waits — up to the
// context's deadline — for queued and running jobs to drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CacheStatus classifies what Submit found for a job's content address.
type CacheStatus string

const (
	CacheHit      CacheStatus = "hit"      // served from the result cache
	CacheInflight CacheStatus = "inflight" // identical job already queued/running
	CacheMiss     CacheStatus = "miss"     // fresh work admitted
)

// Submit admits a normalized job (Tenant already resolved). On a cache hit
// the returned job is already done and carries the cached artifacts; on an
// inflight dedup it is the existing job; otherwise it is queued.
func (s *Server) Submit(job Job) (*jobState, CacheStatus, error) {
	hash := job.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, "", ErrShuttingDown
	}
	if art, ok := s.cache.Get(hash); ok {
		s.hits.Add(0, 1)
		s.accepted.Add(0, 1)
		js := s.newJobLocked(job, hash)
		js.status = StatusDone
		js.cached = true
		js.art = art
		js.events.append(Event{Type: "queued"})
		js.events.append(Event{Type: "done", Cached: true})
		js.events.closeLog()
		close(js.done)
		s.served.Add1(0, s.tenants.ID(js.tenant), 1)
		return js, CacheHit, nil
	}
	if ex, ok := s.inflight[hash]; ok {
		s.deduped.Add(0, 1)
		return ex, CacheInflight, nil
	}
	if s.queued >= s.cfg.QueueDepth {
		s.rejected.Add(0, 1)
		retry := 1 + s.queued/s.cfg.Workers
		return nil, "", ErrQueueFull{Depth: s.queued, RetryAfter: retry}
	}
	s.misses.Add(0, 1)
	s.accepted.Add(0, 1)
	js := s.newJobLocked(job, hash)
	js.status = StatusQueued
	s.inflight[hash] = js
	if _, known := s.queues[js.tenant]; !known {
		s.ring = append(s.ring, js.tenant)
	}
	s.queues[js.tenant] = append(s.queues[js.tenant], js)
	s.queued++
	js.events.append(Event{Type: "queued"})
	s.cond.Signal()
	return js, CacheMiss, nil
}

// newJobLocked allocates a job record under s.mu.
func (s *Server) newJobLocked(job Job, hash string) *jobState {
	s.nextID++
	js := &jobState{
		id:     fmt.Sprintf("j-%06d", s.nextID),
		hash:   hash,
		tenant: job.Tenant,
		job:    job,
		seq:    s.nextID,
		events: newEventLog(),
		done:   make(chan struct{}),
	}
	if js.tenant == "" {
		js.tenant = "anonymous"
	}
	s.jobs[js.id] = js
	return js
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	return js, ok
}

// queuePosition estimates how many admitted jobs precede js (by admission
// order; the round-robin scheduler may interleave tenants differently, but
// the number never grows). Returns -1 when js is not queued.
func (s *Server) queuePosition(js *jobState) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if js.status != StatusQueued {
		return -1
	}
	ahead := 0
	for _, q := range s.queues {
		for _, other := range q {
			if other.seq < js.seq {
				ahead++
			}
		}
	}
	return ahead
}

// dequeue blocks for the next job, rotating fairly across tenants: each
// pop advances the ring, so a tenant flooding its own FIFO cannot starve
// another tenant's single job. Returns nil when the server drained and
// closed.
func (s *Server) dequeue() *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.queued > 0 {
			n := len(s.ring)
			for i := 0; i < n; i++ {
				tenant := s.ring[(s.rr+i)%n]
				q := s.queues[tenant]
				if len(q) == 0 {
					continue
				}
				js := q[0]
				s.queues[tenant] = q[1:]
				s.rr = (s.rr + i + 1) % n
				s.queued--
				s.running++
				js.status = StatusRunning
				return js
			}
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// worker is one pool goroutine: dequeue, run, publish, repeat.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		js := s.dequeue()
		if js == nil {
			return
		}
		js.events.append(Event{Type: "start"})
		art, err := s.cfg.Runner(js.job, js.events.append)

		s.mu.Lock()
		s.running--
		delete(s.inflight, js.hash)
		if err != nil {
			js.status = StatusFailed
			js.errMsg = err.Error()
			s.failed.Add(0, 1)
			js.events.append(Event{Type: "error", Error: js.errMsg})
		} else {
			js.status = StatusDone
			js.art = art
			s.steps.Add(0, float64(art.Steps))
			s.served.Add1(0, s.tenants.ID(js.tenant), 1)
			if perr := s.cache.Put(js.hash, art); perr != nil {
				// The result still serves; only persistence degraded.
				js.events.append(Event{Type: "error", Error: "cache store: " + perr.Error()})
			}
			if ev := s.cache.Stats().Evictions; ev > s.lastEvict {
				s.evict.Add(0, float64(ev-s.lastEvict))
				s.lastEvict = ev
			}
			js.events.append(Event{Type: "done", Steps: art.Steps})
		}
		s.mu.Unlock()
		js.events.closeLog()
		close(js.done)
	}
}

// refreshGauges updates the point-in-time gauges before a scrape. The
// virtual-time stamp slot is 0: the server lives on the wall clock, not a
// simulated one.
func (s *Server) refreshGauges() {
	s.mu.Lock()
	queued, running := s.queued, s.running
	s.mu.Unlock()
	cs := s.cache.Stats()
	s.depthG.Set(0, float64(queued), 0)
	s.runningG.Set(0, float64(running), 0)
	s.entriesG.Set(0, float64(cs.Entries), 0)
	s.bytesG.Set(0, float64(cs.Bytes), 0)
}
