//go:build !race

package serve

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
