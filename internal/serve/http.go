package serve

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// jobView is the JSON shape of a job on POST /jobs and GET /jobs/{id}.
type jobView struct {
	ID     string    `json:"id"`
	Hash   string    `json:"hash"`
	Tenant string    `json:"tenant"`
	Status JobStatus `json:"status"`
	// Cache is hit/inflight/miss on the POST response; omitted elsewhere.
	Cache CacheStatus `json:"cache,omitempty"`
	// Cached marks a done job whose artifacts came from the result cache.
	Cached bool `json:"cached,omitempty"`
	// QueuePosition counts admitted jobs ahead of a queued job (-1 when
	// not queued).
	QueuePosition int `json:"queue_position"`
	// StepsExecuted is the solver timestep count spent on this job's
	// artifacts: 0 for cache hits.
	StepsExecuted int    `json:"steps_executed"`
	Error         string `json:"error,omitempty"`
	// Attempts counts runner invocations: 2 after the one infrastructure
	// retry, 0 while still queued.
	Attempts int `json:"attempts,omitempty"`
	// Replayed marks a job re-queued from the journal after a restart.
	Replayed bool `json:"replayed,omitempty"`
	// Canonical is the canonical request the hash covers (POST only).
	Canonical json.RawMessage `json:"canonical,omitempty"`
}

func (s *Server) view(js *jobState, cache CacheStatus, withCanonical bool) jobView {
	s.mu.Lock()
	v := jobView{
		ID: js.id, Hash: js.hash, Tenant: js.tenant,
		Status: js.status, Cache: cache, Cached: js.cached,
		QueuePosition: -1, Error: js.errMsg,
		Attempts: js.attempts, Replayed: js.replayed,
	}
	if js.art != nil {
		if js.cached {
			v.StepsExecuted = 0
		} else {
			v.StepsExecuted = js.art.Steps
		}
	}
	s.mu.Unlock()
	if p := s.queuePosition(js); p >= 0 {
		v.QueuePosition = p
	}
	if withCanonical {
		v.Canonical = js.job.Canonical()
	}
	return v
}

// Handler returns the service's HTTP API:
//
//	POST   /jobs               submit a job (409s, 429s, 400s and 503s explained in README)
//	GET    /jobs/{id}          status and queue position
//	DELETE /jobs/{id}          cancel (202 accepted, 409 already finished, 404 unknown)
//	GET    /jobs/{id}/result   artifact metadata, or ?artifact=tables|trace|metrics raw bytes
//	GET    /jobs/{id}/events   NDJSON progress stream until the job finishes
//	GET    /metrics            server counters (Prometheus text, ?format=json for JSON)
//	/debug/vars, /debug/pprof/...  host-process introspection
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// TenantHeader names the job's fairness bucket; it wins over the request
// body's "tenant" field.
const TenantHeader = "X-Overd-Tenant"

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading request: %v", err)
		return
	}
	job, err := ParseJobLimits(body, s.cfg.Limits)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if h := r.Header.Get(TenantHeader); h != "" {
		job.Tenant = h
	}
	if job.Tenant == "" {
		job.Tenant = "anonymous"
	}
	js, cache, err := s.Submit(job)
	var full ErrQueueFull
	var wont ErrWontMeetDeadline
	switch {
	case errors.As(err, &full):
		w.Header().Set("Retry-After", strconv.Itoa(full.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.As(err, &wont):
		w.Header().Set("Retry-After", strconv.Itoa(wont.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrJournalUnavailable):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	code := http.StatusAccepted
	if cache == CacheHit {
		code = http.StatusOK
	}
	writeJSON(w, code, s.view(js, cache, true))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	js, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.view(js, "", false))
}

// handleCancel is DELETE /jobs/{id}: 404 for an unknown id, 409 when the
// job already finished (its result is not revoked), 202 when the
// cancellation took — immediately for a queued job, at the next solver
// step boundary for a running one.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	_, err := s.Cancel(id)
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	case errors.Is(err, ErrJobFinished):
		js, _ := s.Job(id)
		writeJSON(w, http.StatusConflict, s.view(js, "", false))
		return
	}
	js, _ := s.Job(id)
	writeJSON(w, http.StatusAccepted, s.view(js, "", false))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	js, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	status, errMsg, art := js.status, js.errMsg, js.art
	s.mu.Unlock()
	switch status {
	case StatusQueued, StatusRunning:
		writeJSON(w, http.StatusAccepted, s.view(js, "", false))
		return
	case StatusFailed:
		writeError(w, http.StatusConflict, "job %s failed: %s", js.id, errMsg)
		return
	case StatusCancelled:
		writeError(w, http.StatusConflict, "job %s was cancelled: %s", js.id, errMsg)
		return
	}
	switch name := r.URL.Query().Get("artifact"); name {
	case "tables":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(art.Tables)
	case "trace":
		w.Header().Set("Content-Type", "application/json")
		w.Write(art.Trace)
	case "metrics":
		w.Header().Set("Content-Type", "application/json")
		w.Write(art.Metrics)
	case "":
		steps := art.Steps
		if js.cached {
			steps = 0
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id": js.id, "hash": js.hash, "cached": js.cached,
			"steps_executed": steps,
			"artifacts": map[string]int{
				"tables": len(art.Tables), "trace": len(art.Trace),
				"metrics": len(art.Metrics),
			},
		})
	default:
		writeError(w, http.StatusBadRequest,
			"unknown artifact %q (valid: tables, trace, metrics)", name)
	}
}

// handleEvents streams a job's NDJSON event log. The handler defends
// itself against slow or vanished clients: every write runs under a per-
// write deadline (Config.EventWriteTimeout) via the response controller,
// and the first write error — timeout, reset connection, anything — drops
// the subscriber instead of letting it pin a handler goroutine for the
// life of the job.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	js, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	s.mu.Lock()
	s.subscribers++
	s.mu.Unlock()
	rc := http.NewResponseController(w)
	dropped := false
	defer func() {
		// Clear the write deadline so the server's own response teardown
		// (chunked-encoding trailer) is not caught by a stale deadline.
		_ = rc.SetWriteDeadline(time.Time{})
		s.mu.Lock()
		s.subscribers--
		s.mu.Unlock()
		if dropped {
			s.subDropped.Add(0, 1)
		}
	}()
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		evs, closed, grown := js.events.from(next)
		for _, e := range evs {
			// SetWriteDeadline is a no-op error on recorders/test writers
			// that lack the hook; the encode error is the real tripwire.
			_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.EventWriteTimeout))
			if err := enc.Encode(e); err != nil {
				dropped = true
				return
			}
		}
		next += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-grown:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshGauges()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := s.reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
