package serve

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"overd/internal/span"
	"overd/internal/trace"
)

// jobView is the JSON shape of a job on POST /jobs and GET /jobs/{id}.
type jobView struct {
	ID     string    `json:"id"`
	Hash   string    `json:"hash"`
	Tenant string    `json:"tenant"`
	Status JobStatus `json:"status"`
	// Cache is hit/inflight/miss on the POST response; omitted elsewhere.
	Cache CacheStatus `json:"cache,omitempty"`
	// Cached marks a done job whose artifacts came from the result cache.
	Cached bool `json:"cached,omitempty"`
	// QueuePosition counts admitted jobs ahead of a queued job (-1 when
	// not queued).
	QueuePosition int `json:"queue_position"`
	// StepsExecuted is the solver timestep count spent on this job's
	// artifacts: 0 for cache hits.
	StepsExecuted int    `json:"steps_executed"`
	Error         string `json:"error,omitempty"`
	// Attempts counts runner invocations: 2 after the one infrastructure
	// retry, 0 while still queued.
	Attempts int `json:"attempts,omitempty"`
	// Replayed marks a job re-queued from the journal after a restart.
	Replayed bool `json:"replayed,omitempty"`
	// Canonical is the canonical request the hash covers (POST only).
	Canonical json.RawMessage `json:"canonical,omitempty"`
}

func (s *Server) view(js *jobState, cache CacheStatus, withCanonical bool) jobView {
	s.mu.Lock()
	v := jobView{
		ID: js.id, Hash: js.hash, Tenant: js.tenant,
		Status: js.status, Cache: cache, Cached: js.cached,
		QueuePosition: -1, Error: js.errMsg,
		Attempts: js.attempts, Replayed: js.replayed,
	}
	if js.art != nil {
		if js.cached {
			v.StepsExecuted = 0
		} else {
			v.StepsExecuted = js.art.Steps
		}
	}
	s.mu.Unlock()
	if p := s.queuePosition(js); p >= 0 {
		v.QueuePosition = p
	}
	if withCanonical {
		v.Canonical = js.job.Canonical()
	}
	return v
}

// Handler returns the service's HTTP API:
//
//	POST   /jobs               submit a job (409s, 429s, 400s and 503s explained in README)
//	GET    /jobs/{id}          status and queue position
//	DELETE /jobs/{id}          cancel (202 accepted, 409 already finished, 404 unknown)
//	GET    /jobs/{id}/result   artifact metadata, or ?artifact=tables|trace|metrics|chrome raw bytes
//	GET    /jobs/{id}/events   NDJSON progress stream (seq-numbered, heartbeats) until the job finishes
//	GET    /jobs/{id}/spans    wall-clock span record (?format=chrome merges it with the solver trace)
//	GET    /status             one-page JSON service overview
//	GET    /metrics            server counters (Prometheus text, ?format=json for JSON)
//	/debug/vars, /debug/pprof/...  host-process introspection
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/spans", s.handleSpans)
	mux.HandleFunc("GET /status", s.handleOverview)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// TenantHeader names the job's fairness bucket; it wins over the request
// body's "tenant" field.
const TenantHeader = "X-Overd-Tenant"

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading request: %v", err)
		return
	}
	job, err := ParseJobLimits(body, s.cfg.Limits)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if h := r.Header.Get(TenantHeader); h != "" {
		job.Tenant = h
	}
	if job.Tenant == "" {
		job.Tenant = "anonymous"
	}
	js, cache, err := s.Submit(job)
	var full ErrQueueFull
	var wont ErrWontMeetDeadline
	switch {
	case errors.As(err, &full):
		w.Header().Set("Retry-After", strconv.Itoa(full.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.As(err, &wont):
		w.Header().Set("Retry-After", strconv.Itoa(wont.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrJournalUnavailable):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	code := http.StatusAccepted
	if cache == CacheHit {
		code = http.StatusOK
	}
	writeJSON(w, code, s.view(js, cache, true))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	js, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.view(js, "", false))
}

// handleCancel is DELETE /jobs/{id}: 404 for an unknown id, 409 when the
// job already finished (its result is not revoked), 202 when the
// cancellation took — immediately for a queued job, at the next solver
// step boundary for a running one.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	_, err := s.Cancel(id)
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	case errors.Is(err, ErrJobFinished):
		js, _ := s.Job(id)
		writeJSON(w, http.StatusConflict, s.view(js, "", false))
		return
	}
	js, _ := s.Job(id)
	writeJSON(w, http.StatusAccepted, s.view(js, "", false))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	js, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	status, errMsg, art := js.status, js.errMsg, js.art
	s.mu.Unlock()
	switch status {
	case StatusQueued, StatusRunning:
		writeJSON(w, http.StatusAccepted, s.view(js, "", false))
		return
	case StatusFailed:
		writeError(w, http.StatusConflict, "job %s failed: %s", js.id, errMsg)
		return
	case StatusCancelled:
		writeError(w, http.StatusConflict, "job %s was cancelled: %s", js.id, errMsg)
		return
	}
	switch name := r.URL.Query().Get("artifact"); name {
	case "tables":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(art.Tables)
	case "trace":
		w.Header().Set("Content-Type", "application/json")
		w.Write(art.Trace)
	case "metrics":
		w.Header().Set("Content-Type", "application/json")
		w.Write(art.Metrics)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Write(art.Chrome)
	case "":
		steps := art.Steps
		if js.cached {
			steps = 0
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id": js.id, "hash": js.hash, "cached": js.cached,
			"steps_executed": steps,
			"artifacts": map[string]int{
				"tables": len(art.Tables), "trace": len(art.Trace),
				"metrics": len(art.Metrics), "chrome": len(art.Chrome),
			},
		})
	default:
		writeError(w, http.StatusBadRequest,
			"unknown artifact %q (valid: tables, trace, metrics, chrome)", name)
	}
}

// handleEvents streams a job's NDJSON event log. The handler defends
// itself against slow or vanished clients: every write runs under a per-
// write deadline (Config.EventWriteTimeout) via the response controller,
// and the first write error — timeout, reset connection, anything — drops
// the subscriber instead of letting it pin a handler goroutine for the
// life of the job.
//
// Each subscriber gets its own monotonic seq numbering (stamped on copies
// at write time — the stored log is never renumbered) and, after
// Config.EventHeartbeat of idleness, synthetic heartbeat events, so a
// client can both detect gaps in its own stream and tell an idle stream
// from a dead connection. The whole attach-to-detach window is recorded as
// one stream span on the job's flight-recorder record.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	js, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	s.mu.Lock()
	s.subscribers++
	s.mu.Unlock()
	rc := http.NewResponseController(w)
	st0 := time.Now()
	seq := 0
	fate := "completed"
	defer func() {
		// Clear the write deadline so the server's own response teardown
		// (chunked-encoding trailer) is not caught by a stale deadline.
		_ = rc.SetWriteDeadline(time.Time{})
		s.mu.Lock()
		s.subscribers--
		s.mu.Unlock()
		if fate == "dropped" {
			s.subDropped.Add(0, 1)
		}
		// The subscriber's window is itself a span: attached to the live
		// record, or post-mortem to the flight-recorder ring when the job
		// finished before the client detached.
		attrs := []span.Attr{
			{Key: "events", Value: strconv.Itoa(seq)},
			{Key: "fate", Value: fate},
		}
		if rec := js.spans.Load(); rec != nil {
			rec.AddStage(span.StageStream, st0, time.Now(), attrs...)
		} else {
			s.flight.Append(js.id, span.StageStream, st0, time.Now(), attrs...)
		}
	}()
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	heartbeat := time.NewTicker(s.cfg.EventHeartbeat)
	defer heartbeat.Stop()
	next := 0
	for {
		evs, closed, grown := js.events.from(next)
		for _, e := range evs {
			// SetWriteDeadline is a no-op error on recorders/test writers
			// that lack the hook; the encode error is the real tripwire.
			e.Seq = seq
			_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.EventWriteTimeout))
			if err := enc.Encode(e); err != nil {
				fate = "dropped"
				return
			}
			seq++
		}
		next += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-grown:
		case <-heartbeat.C:
			_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.EventWriteTimeout))
			if err := enc.Encode(Event{Type: "heartbeat", Seq: seq}); err != nil {
				fate = "dropped"
				return
			}
			seq++
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			fate = "client-gone"
			return
		}
	}
}

// Chrome-track layout for the merged span export: the solver's virtual-time
// trace stays pid 0 (as WriteChromeTrace emits it); the service's wall-clock
// spans become pid 1, lifecycle stages on one thread track and event-stream
// windows on another.
const (
	serviceChromePID = 1
	lifecycleTID     = 0
	streamTID        = 1
)

// handleSpans is GET /jobs/{id}/spans: the job's wall-clock span record —
// live for a queued/running job, from the flight recorder's bounded ring
// once it finished (410 Gone after eviction). ?format=chrome returns the
// merged Chrome trace document instead: the job's virtual-time solver
// timeline next to the service's wall-clock spans, on separate clock
// tracks, both starting at zero.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "span layer disabled (flight recorder off)")
		return
	}
	js, known := s.Job(id)
	var rec *span.Record
	if known {
		rec = js.spans.Load()
	}
	if rec == nil {
		rec, _ = s.flight.Get(id)
	}
	switch {
	case rec == nil && !known:
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	case rec == nil:
		writeError(w, http.StatusGone,
			"job %s's span record was evicted from the flight recorder (ring keeps the last %d finished jobs)",
			id, s.flight.Cap())
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		s.writeMergedChrome(w, js, rec)
		return
	}
	writeJSON(w, http.StatusOK, rec.View())
}

// writeMergedChrome merges the job's virtual-time Chrome trace artifact
// (when the job is done and has one) with its wall-clock service spans.
func (s *Server) writeMergedChrome(w http.ResponseWriter, js *jobState, rec *span.Record) {
	var doc []byte
	if js != nil {
		s.mu.Lock()
		if js.art != nil {
			doc = js.art.Chrome
		}
		s.mu.Unlock()
	}
	v := rec.View()
	threads := map[int]string{lifecycleTID: "lifecycle", streamTID: "event streams"}
	slices := make([]trace.ExtraSlice, 0, len(v.Spans))
	for _, sp := range v.Spans {
		tid := lifecycleTID
		if sp.Stage == span.StageStream.String() {
			tid = streamTID
		}
		start := sp.Start.Sub(v.Start).Seconds() * 1e6
		if start < 0 {
			start = 0
		}
		var args map[string]any
		if len(sp.Attrs) > 0 {
			args = make(map[string]any, len(sp.Attrs))
			for k, val := range sp.Attrs {
				args[k] = val
			}
		}
		slices = append(slices, trace.ExtraSlice{
			Name: sp.Stage, Cat: "service", TID: tid,
			StartUS: start, DurUS: sp.DurationSeconds * 1e6, Args: args,
		})
	}
	merged, err := trace.MergeChromeTrace(doc, serviceChromePID,
		"overd service wall clock (job "+v.ID+")", threads, slices)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "merging chrome trace: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(merged)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshGauges()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := s.reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
