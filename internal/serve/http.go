package serve

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// jobView is the JSON shape of a job on POST /jobs and GET /jobs/{id}.
type jobView struct {
	ID     string    `json:"id"`
	Hash   string    `json:"hash"`
	Tenant string    `json:"tenant"`
	Status JobStatus `json:"status"`
	// Cache is hit/inflight/miss on the POST response; omitted elsewhere.
	Cache CacheStatus `json:"cache,omitempty"`
	// Cached marks a done job whose artifacts came from the result cache.
	Cached bool `json:"cached,omitempty"`
	// QueuePosition counts admitted jobs ahead of a queued job (-1 when
	// not queued).
	QueuePosition int `json:"queue_position"`
	// StepsExecuted is the solver timestep count spent on this job's
	// artifacts: 0 for cache hits.
	StepsExecuted int    `json:"steps_executed"`
	Error         string `json:"error,omitempty"`
	// Canonical is the canonical request the hash covers (POST only).
	Canonical json.RawMessage `json:"canonical,omitempty"`
}

func (s *Server) view(js *jobState, cache CacheStatus, withCanonical bool) jobView {
	s.mu.Lock()
	v := jobView{
		ID: js.id, Hash: js.hash, Tenant: js.tenant,
		Status: js.status, Cache: cache, Cached: js.cached,
		QueuePosition: -1, Error: js.errMsg,
	}
	if js.art != nil {
		if js.cached {
			v.StepsExecuted = 0
		} else {
			v.StepsExecuted = js.art.Steps
		}
	}
	s.mu.Unlock()
	if p := s.queuePosition(js); p >= 0 {
		v.QueuePosition = p
	}
	if withCanonical {
		v.Canonical = js.job.Canonical()
	}
	return v
}

// Handler returns the service's HTTP API:
//
//	POST /jobs               submit a job (409s, 429s and 400s explained in README)
//	GET  /jobs/{id}          status and queue position
//	GET  /jobs/{id}/result   artifact metadata, or ?artifact=tables|trace|metrics raw bytes
//	GET  /jobs/{id}/events   NDJSON progress stream until the job finishes
//	GET  /metrics            server counters (Prometheus text, ?format=json for JSON)
//	/debug/vars, /debug/pprof/...  host-process introspection
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// TenantHeader names the job's fairness bucket; it wins over the request
// body's "tenant" field.
const TenantHeader = "X-Overd-Tenant"

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading request: %v", err)
		return
	}
	job, err := ParseJob(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if h := r.Header.Get(TenantHeader); h != "" {
		job.Tenant = h
	}
	if job.Tenant == "" {
		job.Tenant = "anonymous"
	}
	js, cache, err := s.Submit(job)
	var full ErrQueueFull
	switch {
	case errors.As(err, &full):
		w.Header().Set("Retry-After", strconv.Itoa(full.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	code := http.StatusAccepted
	if cache == CacheHit {
		code = http.StatusOK
	}
	writeJSON(w, code, s.view(js, cache, true))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	js, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.view(js, "", false))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	js, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	status, errMsg, art := js.status, js.errMsg, js.art
	s.mu.Unlock()
	switch status {
	case StatusQueued, StatusRunning:
		writeJSON(w, http.StatusAccepted, s.view(js, "", false))
		return
	case StatusFailed:
		writeError(w, http.StatusConflict, "job %s failed: %s", js.id, errMsg)
		return
	}
	switch name := r.URL.Query().Get("artifact"); name {
	case "tables":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(art.Tables)
	case "trace":
		w.Header().Set("Content-Type", "application/json")
		w.Write(art.Trace)
	case "metrics":
		w.Header().Set("Content-Type", "application/json")
		w.Write(art.Metrics)
	case "":
		steps := art.Steps
		if js.cached {
			steps = 0
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id": js.id, "hash": js.hash, "cached": js.cached,
			"steps_executed": steps,
			"artifacts": map[string]int{
				"tables": len(art.Tables), "trace": len(art.Trace),
				"metrics": len(art.Metrics),
			},
		})
	default:
		writeError(w, http.StatusBadRequest,
			"unknown artifact %q (valid: tables, trace, metrics)", name)
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	js, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		evs, closed, grown := js.events.from(next)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		next += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-grown:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshGauges()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := s.reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
