//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in; heavy
// real-solver tests skip under it (the ~20x slowdown blows past the
// harness's wait deadlines without testing anything new).
const raceEnabled = true
