package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"overd/internal/span"
)

// Worker supervision: each pool goroutine runs jobs through a recover()
// boundary so a panicking Runner marks its job failed instead of killing
// the daemon. Failures are classified before retrying:
//
//   - infrastructure (a panic, journal I/O): one bounded retry after a
//     fixed deterministic backoff — the environment may have healed;
//   - deterministic (a solver error, a max_steps budget): never retried —
//     the same inputs would fail identically;
//   - cancellation (DELETE, deadline expiry): terminal as "cancelled".

// panicError is a recovered runner panic, sanitized for clients: the
// message survives, the stack goes only to Config.Logf.
type panicError struct {
	msg string
}

func (e *panicError) Error() string { return "runner panic: " + e.msg }

// sanitizePanic renders a recovered value into a short single-line
// message suitable for a client-visible errMsg.
func sanitizePanic(p any) string {
	msg := fmt.Sprintf("%v", p)
	msg = strings.ReplaceAll(msg, "\n", " ")
	const max = 200
	if len(msg) > max {
		msg = msg[:max] + "…"
	}
	return msg
}

// isInfra reports whether an error is infrastructure-classified and so
// worth the single retry.
func isInfra(err error) bool {
	var pe *panicError
	return errors.As(err, &pe)
}

// worker is one pool goroutine: dequeue, supervise a run, publish, repeat.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		js := s.dequeue()
		if js == nil {
			return
		}
		s.runJob(js)
	}
}

// runJob supervises one job: invoke the runner behind the panic boundary,
// retry once on infrastructure failure, then finalize.
func (s *Server) runJob(js *jobState) {
	js.events.append(Event{Type: "start"})
	for attempt := 1; ; attempt++ {
		s.mu.Lock()
		js.attempts = attempt
		s.mu.Unlock()
		et0 := time.Now()
		art, err := s.invoke(js)
		js.spans.Load().AddStage(span.StageExecute, et0, time.Now(),
			span.Attr{Key: "attempt", Value: strconv.Itoa(attempt)})
		if err != nil && isInfra(err) && attempt == 1 &&
			js.ctx.Err() == nil && !s.isKilled() {
			s.retries.Add(0, 1)
			js.events.append(Event{Type: "retry", Error: err.Error()})
			s.annotate(js, "retry", kv{"error", err.Error()})
			time.Sleep(s.cfg.RetryBackoff)
			continue
		}
		s.finalize(js, art, err)
		return
	}
}

// invoke runs the Runner behind the panic boundary, under runtime/pprof
// labels: every profile sample and labeled goroutine dump taken while the
// job executes carries its id, tenant and balancer, so a CPU profile of the
// daemon attributes time to jobs without any solver instrumentation.
func (s *Server) invoke(js *jobState) (art *Artifacts, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(0, 1)
			s.logPanic(js, p, debug.Stack())
			art, err = nil, &panicError{msg: sanitizePanic(p)}
		}
	}()
	pprof.Do(js.ctx, pprof.Labels(
		"job_id", js.id, "tenant", js.tenant, "balancer", js.job.Balancer,
	), func(ctx context.Context) {
		art, err = s.cfg.Runner(ctx, js.job, js.events.append)
	})
	return art, err
}

// finalize publishes a finished attempt's outcome: terminal status, result
// cache, journal marker, metrics, events. Under a simulated kill -9 it
// does nothing at all — a dead process publishes nothing — which is what
// makes the journal's replay the only survivor, exactly as after a real
// SIGKILL between a job's last step and its done marker.
func (s *Server) finalize(js *jobState, art *Artifacts, err error) {
	pt0 := time.Now()
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return
	}
	s.running--
	if s.runningBy[js.tenant] <= 1 {
		delete(s.runningBy, js.tenant)
	} else {
		s.runningBy[js.tenant]--
	}
	delete(s.inflight, js.hash)
	js.cancel() // release the deadline timer
	s.recordDurLocked(time.Since(js.started).Seconds())
	switch {
	case err == nil:
		js.status = StatusDone
		js.art = art
		s.steps.Add(0, float64(art.Steps))
		s.served.Add1(0, s.tenants.ID(js.tenant), 1)
		if perr := s.cache.Put(js.hash, art); perr != nil {
			// The result still serves; only persistence degraded.
			js.events.append(Event{Type: "error", Error: "cache store: " + perr.Error()})
		}
		if ev := s.cache.Stats().Evictions; ev > s.lastEvict {
			s.evict.Add(0, float64(ev-s.lastEvict))
			s.lastEvict = ev
		}
		s.journalDoneLocked(js, StatusDone, "")
		js.events.append(Event{Type: "done", Steps: art.Steps})
	case js.cancelReq || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		js.status = StatusCancelled
		js.errMsg = cancelReason(js, err)
		s.cancelled.Add(0, 1)
		s.journalDoneLocked(js, StatusCancelled, js.errMsg)
		js.events.append(Event{Type: "cancelled", Error: js.errMsg})
		s.recordFailureLocked(js)
	default:
		js.status = StatusFailed
		js.errMsg = err.Error()
		s.failed.Add(0, 1)
		s.journalDoneLocked(js, StatusFailed, js.errMsg)
		js.events.append(Event{Type: "error", Error: js.errMsg})
		s.recordFailureLocked(js)
	}
	s.mu.Unlock()
	js.events.closeLog()
	close(js.done)
	// Publication is the last child span; then the root closes and the
	// record moves to the flight recorder's ring (feeding the latency
	// histograms via OnFinish). Clearing js.spans hands retention to the
	// bounded ring — post-mortem reads go through GET /jobs/{id}/spans.
	rec := js.spans.Load()
	rec.AddStage(span.StagePublish, pt0, time.Now())
	rec.Finish(string(js.status))
	js.spans.Store(nil)
}

// cancelReason explains a cancellation in the client-visible errMsg.
func cancelReason(js *jobState, err error) string {
	switch {
	case js.cancelReq:
		return "cancelled by request"
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Sprintf("deadline of %gs exceeded", js.job.Deadline)
	default:
		return err.Error()
	}
}

// isKilled reports whether the simulated kill -9 fired.
func (s *Server) isKilled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

// kill simulates `kill -9` for tests: admission stops, every running
// attempt's context is cancelled so its goroutine unwinds, and workers
// abandon their jobs in place — no status update, no cache write, no
// journal marker, no events — because a SIGKILL'd process publishes
// nothing. The journal file is closed as the kernel would close it: with
// whatever was already fsync'd. A fresh NewServer against the same
// directories is the "restart".
func (s *Server) kill() {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return
	}
	s.killed = true
	s.closed = true
	for _, js := range s.jobs {
		if js.status == StatusRunning && js.cancel != nil {
			js.cancel()
		}
	}
	if s.jrnl != nil {
		s.jrnl.close()
		s.jrnl = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
