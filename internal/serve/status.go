package serve

import (
	"net/http"
	"time"
)

// statusView is the GET /status JSON document: one page that answers "is the
// service healthy and what is it doing right now" without scraping /metrics
// or tailing logs — uptime and incarnation, queue and in-flight load per
// tenant, journal health, cache occupancy, flight-recorder residency, and a
// bounded ring of recent failures to pivot into GET /jobs/{id}/spans from.
type statusView struct {
	Service       string  `json:"service"`
	Incarnation   string  `json:"incarnation"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	Draining      bool    `json:"draining"`

	Queue struct {
		Depth    int            `json:"depth"`
		Capacity int            `json:"capacity"`
		ByTenant map[string]int `json:"by_tenant,omitempty"`
	} `json:"queue"`
	Running struct {
		Total    int            `json:"total"`
		ByTenant map[string]int `json:"by_tenant,omitempty"`
	} `json:"running"`
	EventSubscribers int `json:"event_subscribers"`

	// Jobs are the lifetime counters (mirrors of the /metrics families).
	Jobs map[string]float64 `json:"jobs"`

	Cache struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		Entries   int   `json:"entries"`
		Bytes     int64 `json:"bytes"`
		DiskTier  bool  `json:"disk_tier"`
	} `json:"cache"`

	Journal *journalStatus `json:"journal,omitempty"`

	FlightRecorder struct {
		Enabled  bool `json:"enabled"`
		Resident int  `json:"resident"`
		Capacity int  `json:"capacity"`
	} `json:"flight_recorder"`

	RecentFailures []failureNote `json:"recent_failures,omitempty"`
}

// journalStatus summarizes WAL health: append/failure counts and whether the
// journal file is still open (it closes on clean drain).
type journalStatus struct {
	Open      bool   `json:"open"`
	Appends   int64  `json:"appends"`
	Failures  int64  `json:"failures"`
	LastError string `json:"last_error,omitempty"`
}

// handleOverview is GET /status.
func (s *Server) handleOverview(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statusSnapshot())
}

// statusSnapshot assembles the overview under one brief hold of s.mu.
func (s *Server) statusSnapshot() statusView {
	var v statusView
	v.Service = "overd-job-service"
	v.Incarnation = s.incarnation
	v.UptimeSeconds = time.Since(s.started).Seconds()
	v.Workers = s.cfg.Workers

	s.mu.Lock()
	v.Draining = s.closed
	v.Queue.Depth = s.queued
	v.Queue.Capacity = s.cfg.QueueDepth
	for tenant, q := range s.queues {
		if len(q) > 0 {
			if v.Queue.ByTenant == nil {
				v.Queue.ByTenant = make(map[string]int)
			}
			v.Queue.ByTenant[tenant] = len(q)
		}
	}
	v.Running.Total = s.running
	if len(s.runningBy) > 0 {
		v.Running.ByTenant = make(map[string]int, len(s.runningBy))
		for tenant, n := range s.runningBy {
			v.Running.ByTenant[tenant] = n
		}
	}
	v.EventSubscribers = s.subscribers
	if s.cfg.JournalDir != "" {
		v.Journal = &journalStatus{
			Open: s.jrnl != nil, Appends: s.jrnlAppends,
			Failures: s.jrnlFails, LastError: s.jrnlLastErr,
		}
	}
	// Newest-first copy of the failure ring.
	for i := 0; i < len(s.failures); i++ {
		idx := (s.failNext - 1 - i + len(s.failures)) % len(s.failures)
		v.RecentFailures = append(v.RecentFailures, s.failures[idx])
	}
	s.mu.Unlock()

	v.Jobs = make(map[string]float64, 8)
	for short, name := range map[string]string{
		"accepted":  "overd_serve_jobs_accepted_total",
		"rejected":  "overd_serve_jobs_rejected_total",
		"shed":      "overd_serve_jobs_shed_total",
		"deduped":   "overd_serve_jobs_deduped_total",
		"failed":    "overd_serve_jobs_failed_total",
		"cancelled": "overd_serve_jobs_cancelled_total",
		"replayed":  "overd_serve_jobs_replayed_total",
		"panics":    "overd_serve_panics_total",
		"retries":   "overd_serve_retries_total",
	} {
		v.Jobs[short] = s.reg.CounterValue(name, 0)
	}

	cs := s.cache.Stats()
	v.Cache.Hits, v.Cache.Misses, v.Cache.Evictions = cs.Hits, cs.Misses, cs.Evictions
	v.Cache.Entries, v.Cache.Bytes = cs.Entries, cs.Bytes
	v.Cache.DiskTier = s.cfg.CacheDir != ""

	v.FlightRecorder.Enabled = s.flight != nil
	v.FlightRecorder.Resident = s.flight.Len()
	v.FlightRecorder.Capacity = s.flight.Cap()
	return v
}
