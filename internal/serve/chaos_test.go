package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// Chaos harness: seeded randomized schedules of worker panics, client
// cancellations, and simulated kill -9 restarts against one journal+cache
// directory pair. Invariants checked per schedule:
//
//  1. durability — every admitted job reaches exactly one terminal
//     journal marker; none is lost and none completes twice;
//  2. no zombie runs — once a job's done marker is durable, no later
//     incarnation ever invokes the runner for that job again;
//  3. byte-identity — artifacts of completed jobs equal the
//     deterministic oracle for their request, no matter how many crashes
//     and replays happened in between;
//  4. metrics/journal reconciliation — each incarnation's failed and
//     cancelled counters equal the markers it wrote.

// chaosArt is the oracle: the artifacts a job's run must produce, as a
// pure function of the request.
func chaosArt(job Job) *Artifacts {
	tag := fmt.Sprintf("chaos:%s:%d:%g", job.Case, job.Steps, job.Scale)
	return &Artifacts{
		Tables:  []byte(tag + ":tables"),
		Trace:   []byte(tag + ":trace"),
		Metrics: []byte(tag + ":metrics"),
		Steps:   job.Steps,
	}
}

// parseWAL reads every whole record currently in the journal file,
// tolerating only a torn final line (mirrors replayJournal's contract).
func parseWAL(t *testing.T, path string) []journalRecord {
	t.Helper()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	var recs []journalRecord
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		var r journalRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			if i == len(lines)-1 {
				continue // torn tail
			}
			t.Fatalf("journal line %d corrupt: %v", i+1, err)
		}
		recs = append(recs, r)
	}
	return recs
}

func TestChaosSchedules(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosSchedule(t, int64(seed))
		})
	}
}

func runChaosSchedule(t *testing.T, seed int64) {
	jdir, cdir := t.TempDir(), t.TempDir()
	walPath := filepath.Join(jdir, journalName)
	rng := rand.New(rand.NewSource(0x9E3779B9 ^ seed))
	var rmu sync.Mutex
	rnd := func(n int) int {
		rmu.Lock()
		defer rmu.Unlock()
		return rng.Intn(n)
	}

	// Runner invocations tagged with the server incarnation they ran in.
	type invocation struct {
		incarnation int
		hash        string
	}
	var imu sync.Mutex
	curInc := 0
	var invocations []invocation
	runner := func(ctx context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		imu.Lock()
		invocations = append(invocations, invocation{curInc, job.Hash()})
		imu.Unlock()
		if rnd(100) < 25 {
			panic(fmt.Sprintf("chaos panic (seed %d)", seed))
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Duration(1+rnd(10)) * time.Millisecond):
		}
		return chaosArt(job), nil
	}

	hashOf := map[string]string{} // admitted id -> job hash
	doneIn := map[string]int{}    // id -> incarnation whose journal holds its terminal marker
	var allIDs []string

	incarnations := 2 + rnd(3)
	nextSteps := 1
	for inc := 0; inc < incarnations; inc++ {
		imu.Lock()
		curInc = inc
		imu.Unlock()
		s, err := NewServer(Config{
			Workers: 2, JournalDir: jdir, CacheDir: cdir,
			RetryBackoff: time.Millisecond, Runner: runner,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Startup compaction rewrites the WAL to meta + pending admits
		// only: any marker seen later was written by THIS incarnation.
		for _, r := range parseWAL(t, walPath) {
			if r.Type == "done" {
				t.Fatalf("incarnation %d: compacted journal still holds a %s marker for %s",
					inc, r.Status, r.ID)
			}
		}
		s.Start()

		for n := 3 + rnd(6); n > 0; n-- {
			j, err := Job{Case: "airfoil", Steps: nextSteps}.Normalize()
			if err != nil {
				t.Fatal(err)
			}
			nextSteps++
			js, _, err := s.Submit(j)
			if err != nil {
				t.Fatalf("incarnation %d: submit: %v", inc, err)
			}
			allIDs = append(allIDs, js.id)
		}
		for n := rnd(3); n > 0; n-- {
			s.Cancel(allIDs[rnd(len(allIDs))]) // unknown/finished errors are part of the chaos
		}

		last := inc == incarnations-1
		if !last {
			time.Sleep(time.Duration(rnd(15)) * time.Millisecond)
			s.kill()
		} else {
			deadline := time.Now().Add(30 * time.Second)
			for {
				s.mu.Lock()
				pending := 0
				for _, js := range s.jobs {
					if js.status == StatusQueued || js.status == StatusRunning {
						pending++
					}
				}
				s.mu.Unlock()
				if pending == 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("final incarnation never drained")
				}
				time.Sleep(2 * time.Millisecond)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := s.Shutdown(ctx); err != nil {
				t.Fatal(err)
			}
			cancel()
		}

		// Post-mortem: the journal is the ground truth for what this
		// incarnation durably admitted and completed.
		var failedMarks, cancelledMarks float64
		seenMark := map[string]bool{}
		for _, r := range parseWAL(t, walPath) {
			switch r.Type {
			case "admit":
				if _, known := hashOf[r.ID]; !known {
					var job Job
					if err := json.Unmarshal(r.Job, &job); err != nil {
						t.Fatalf("admit %s: %v", r.ID, err)
					}
					hashOf[r.ID] = job.Hash()
				}
			case "done":
				if seenMark[r.ID] {
					t.Errorf("incarnation %d wrote two terminal markers for %s", inc, r.ID)
				}
				seenMark[r.ID] = true
				if prev, dup := doneIn[r.ID]; dup {
					t.Errorf("job %s reached terminal state in incarnations %d and %d — completed twice",
						r.ID, prev, inc)
				}
				doneIn[r.ID] = inc
				switch r.Status {
				case StatusFailed:
					failedMarks++
				case StatusCancelled:
					cancelledMarks++
				}
			}
		}
		if got := s.reg.CounterValue("overd_serve_jobs_failed_total", 0); got != failedMarks {
			t.Errorf("incarnation %d: jobs_failed_total = %g, journal holds %g failed markers",
				inc, got, failedMarks)
		}
		if got := s.reg.CounterValue("overd_serve_jobs_cancelled_total", 0); got != cancelledMarks {
			t.Errorf("incarnation %d: jobs_cancelled_total = %g, journal holds %g cancelled markers",
				inc, got, cancelledMarks)
		}

		if last {
			// Durability: every job ever admitted reached a terminal marker.
			for id := range hashOf {
				if _, terminal := doneIn[id]; !terminal {
					t.Errorf("admitted job %s has no terminal marker after the final drain", id)
				}
			}
			// Byte-identity: completed jobs' artifacts match the oracle,
			// crash-replays and cache hits included.
			s.mu.Lock()
			for id, js := range s.jobs {
				if js.status != StatusDone {
					continue
				}
				want := chaosArt(js.job)
				if string(js.art.Tables) != string(want.Tables) ||
					string(js.art.Trace) != string(want.Trace) ||
					string(js.art.Metrics) != string(want.Metrics) {
					t.Errorf("job %s artifacts differ from the oracle", id)
				}
			}
			s.mu.Unlock()
		}
	}

	// No zombie runs: once a hash's job had a durable done marker, no
	// later incarnation may have invoked the runner for it.
	doneHashIn := map[string]int{}
	for id, inc := range doneIn {
		h := hashOf[id]
		if prev, ok := doneHashIn[h]; !ok || inc < prev {
			doneHashIn[h] = inc
		}
	}
	imu.Lock()
	defer imu.Unlock()
	for _, inv := range invocations {
		if markInc, ok := doneHashIn[inv.hash]; ok && inv.incarnation > markInc {
			t.Errorf("hash %.12s ran in incarnation %d after its terminal marker in incarnation %d",
				inv.hash, inv.incarnation, markInc)
		}
	}
}
