package serve

import (
	"reflect"
	"strings"
	"testing"

	"overd"
)

func TestJobNormalizeDefaults(t *testing.T) {
	n, err := Job{Case: "airfoil"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := Job{Case: "airfoil", Machine: "SP2", Nodes: 8, Steps: 5, Scale: 1, CheckEvery: 5, Balancer: "static"}
	if !reflect.DeepEqual(n, want) {
		t.Errorf("normalized = %+v, want %+v", n, want)
	}
}

// TestJobBalancerResolution pins the canonical balancer field: empty
// resolves from fo (so pre-field requests keep one meaning), explicit
// spellings canonicalize, and contradictions are rejected.
func TestJobBalancerResolution(t *testing.T) {
	n, err := Job{Case: "airfoil", Fo: 2}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Balancer != "dynamic" {
		t.Errorf("fo=2 resolved to %q, want dynamic", n.Balancer)
	}
	// An explicit spelling of the resolved default is the same job.
	implicit, _ := Job{Case: "airfoil"}.Normalize()
	explicit, err := Job{Case: "airfoil", Balancer: "static"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if implicit.Hash() != explicit.Hash() {
		t.Error("implicit and explicit static balancer hash apart")
	}
	// Different balancer, different result, different cache entry.
	sfc, err := Job{Case: "airfoil", Balancer: "sfc"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if sfc.Hash() == implicit.Hash() {
		t.Error("sfc and static jobs share a hash")
	}
	bad := []struct {
		job  Job
		want string
	}{
		{Job{Case: "airfoil", Balancer: "magic"}, "unknown balancer"},
		{Job{Case: "airfoil", Balancer: "dynamic"}, "finite load factor"},
		{Job{Case: "airfoil", Balancer: "static", Fo: 2}, "no effect"},
		{Job{Case: "airfoil", Balancer: "diffusive", Fo: 0.5}, "must exceed 1"},
	}
	for _, c := range bad {
		if _, err := c.job.Normalize(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: err = %v, want %q", c.job, err, c.want)
		}
	}
}

// TestJobHashInvariance pins the content-address property: requests that
// mean the same run hash equal regardless of how they were spelled, and
// requests that differ in any run-relevant field hash apart.
func TestJobHashInvariance(t *testing.T) {
	base, err := Job{Case: "airfoil"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	same := []Job{
		{Case: "airfoil", Machine: "SP2"},
		{Case: "airfoil", Nodes: 8, Steps: 5},
		{Case: "airfoil", Scale: 1, CheckEvery: 5},
		{Case: "airfoil", Tenant: "acme"},             // tenant is not identity
		{Case: "airfoil", Tenant: "zenith"},           // neither is a different tenant
		{Case: "airfoil", Faults: &overd.FaultPlan{}}, // empty plan = no plan
		{Case: "airfoil", Deadline: 30},               // how long the caller waits…
		{Case: "airfoil", MaxSteps: 100},              // …and their budget aren't identity
	}
	for i, j := range same {
		n, err := j.Normalize()
		if err != nil {
			t.Fatalf("same[%d]: %v", i, err)
		}
		if n.Hash() != base.Hash() {
			t.Errorf("same[%d] %+v hashes %s, want %s", i, j, n.Hash(), base.Hash())
		}
	}
	diff := []Job{
		{Case: "deltawing"},
		{Case: "airfoil", Nodes: 12},
		{Case: "airfoil", Steps: 6},
		{Case: "airfoil", Scale: 0.5},
		{Case: "airfoil", Machine: "SP"},
		{Case: "airfoil", Fo: 2},
		{Case: "airfoil", Tables: []string{"1"}},
		{Case: "airfoil", Faults: &overd.FaultPlan{Stragglers: []overd.FaultStraggler{{Rank: 0, Factor: 2}}}},
	}
	seen := map[string]int{base.Hash(): -1}
	for i, j := range diff {
		n, err := j.Normalize()
		if err != nil {
			t.Fatalf("diff[%d]: %v", i, err)
		}
		h := n.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("diff[%d] %+v collides with case %d", i, j, prev)
		}
		seen[h] = i
	}
}

func TestJobTableSelectionCanonicalOrder(t *testing.T) {
	a, err := Job{Case: "airfoil", Tables: []string{"5f", "1", "1"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Job{Case: "airfoil", Tables: []string{"1", "5f"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Errorf("reordered/duplicated table selections hash apart:\n%s\n%s",
			a.Canonical(), b.Canonical())
	}
	if got := strings.Join(a.Tables, ","); got != "1,5f" {
		t.Errorf("canonical tables = %q, want \"1,5f\"", got)
	}
}

func TestJobSeedFoldsIntoPlan(t *testing.T) {
	plan := &overd.FaultPlan{Stragglers: []overd.FaultStraggler{{Rank: 1, Factor: 3}}}
	withTop, err := Job{Case: "airfoil", Faults: plan, Seed: 42}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	inPlan := &overd.FaultPlan{Seed: 42, Stragglers: []overd.FaultStraggler{{Rank: 1, Factor: 3}}}
	withIn, err := Job{Case: "airfoil", Faults: inPlan}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if withTop.Hash() != withIn.Hash() {
		t.Errorf("top-level seed and in-plan seed hash apart:\n%s\n%s",
			withTop.Canonical(), withIn.Canonical())
	}
	if plan.Seed != 0 {
		t.Error("Normalize mutated the caller's fault plan")
	}
}

func TestJobValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		job  Job
		want string
	}{
		{"missing case", Job{}, "missing case"},
		{"unknown case", Job{Case: "wing47"}, `unknown case "wing47"`},
		{"unknown machine", Job{Case: "airfoil", Machine: "CM5"}, "CM5"},
		{"negative nodes", Job{Case: "airfoil", Nodes: -2}, "at least one processor"},
		{"negative steps", Job{Case: "airfoil", Steps: -1}, "must be positive"},
		{"negative scale", Job{Case: "airfoil", Scale: -1}, "must be positive"},
		{"negative fo", Job{Case: "airfoil", Fo: -1}, "cannot be negative"},
		{"negative check", Job{Case: "airfoil", CheckEvery: -1}, "must be positive"},
		{"bad table", Job{Case: "airfoil", Tables: []string{"9"}}, `unknown table "9"`},
		{"seed without faults", Job{Case: "airfoil", Seed: 7}, "without a fault plan"},
		{"nodes over limit", Job{Case: "airfoil", Nodes: 1000000}, "exceeds this server's limit of 256"},
		{"steps over limit", Job{Case: "airfoil", Steps: 99999}, "exceeds this server's limit of 10000"},
		{"scale over limit", Job{Case: "airfoil", Scale: 1e6}, "exceeds this server's limit of 64"},
		{"negative deadline", Job{Case: "airfoil", Deadline: -3}, "cannot be negative"},
		{"negative max_steps", Job{Case: "airfoil", MaxSteps: -1}, "cannot be negative"},
		{"max_steps below steps", Job{Case: "airfoil", Steps: 8, MaxSteps: 4}, "always be cancelled"},
		{"checkpoint without faults", Job{Case: "airfoil", CheckpointEvery: 3}, "without faults"},
		{"bad plan", Job{Case: "airfoil",
			Faults: &overd.FaultPlan{Stragglers: []overd.FaultStraggler{{Rank: 0, Factor: 0.5}}}},
			"factor 0.5 < 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.job.Normalize()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

// TestJobCustomLimits: server-configured caps replace the defaults, and
// -1 disables one cap without touching the others.
func TestJobCustomLimits(t *testing.T) {
	lim := Limits{MaxNodes: 16, MaxSteps: -1}
	if _, err := (Job{Case: "airfoil", Nodes: 17}).NormalizeLimits(lim); err == nil ||
		!strings.Contains(err.Error(), "limit of 16") {
		t.Errorf("custom node cap not applied: %v", err)
	}
	if _, err := (Job{Case: "airfoil", Steps: 50000}).NormalizeLimits(lim); err != nil {
		t.Errorf("MaxSteps -1 should disable the step cap: %v", err)
	}
	// MaxScale stayed zero → default still applies.
	if _, err := (Job{Case: "airfoil", Scale: 100}).NormalizeLimits(lim); err == nil {
		t.Error("default scale cap vanished under a partial Limits")
	}
}

func TestParseJob(t *testing.T) {
	j, err := ParseJob([]byte(`{"case":"airfoil","nodes":4,"tenant":"acme"}`))
	if err != nil {
		t.Fatal(err)
	}
	if j.Tenant != "acme" || j.Nodes != 4 || j.Machine != "SP2" {
		t.Errorf("parsed = %+v", j)
	}
	if _, err := ParseJob([]byte(`{"case":"airfoil","scael":1}`)); err == nil ||
		!strings.Contains(err.Error(), "scael") {
		t.Errorf("unknown field not rejected: %v", err)
	}
	if _, err := ParseJob([]byte(`{`)); err == nil {
		t.Error("truncated JSON not rejected")
	}
}
