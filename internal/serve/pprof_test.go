package serve

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestPprofEndpoints smoke-tests the mounted /debug/pprof surface: the CPU
// profile endpoint returns a gzip'd protobuf, and the heap and goroutine
// profiles answer non-empty in both debug renderings.
func TestPprofEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Runner: func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		return art("p", 4), nil
	}})

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, b)
		}
		if len(b) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
		return b
	}

	if b := get("/debug/pprof/profile?seconds=1"); len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Errorf("CPU profile is not gzip (leading bytes % x)", b[:min(2, len(b))])
	}
	if b := get("/debug/pprof/heap?debug=1"); !strings.Contains(string(b), "heap profile") {
		t.Error("heap?debug=1 missing the heap profile header")
	}
	get("/debug/pprof/goroutine?debug=0") // binary protobuf; non-empty is the bar
	if b := get("/debug/pprof/goroutine?debug=1"); !strings.Contains(string(b), "goroutine profile") {
		t.Error("goroutine?debug=1 missing the goroutine profile header")
	}
}

// TestPprofLabelsOnRunningJob blocks a stub runner and takes a labeled
// goroutine dump: the worker goroutine executing the job must carry the
// job_id/tenant/balancer pprof labels that invoke() attaches, so profiles
// of the daemon attribute samples to jobs.
func TestPprofLabelsOnRunningJob(t *testing.T) {
	release := make(chan struct{})
	stub := func(ctx context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		select {
		case <-release:
			return art("l", 4), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: stub})
	_, v := postJob(t, ts, `{"case":"airfoil","steps":2}`, "acme")

	// The labeled dump only shows the job once the worker is inside
	// pprof.Do; poll briefly rather than trusting the queued→running race.
	deadline := time.Now().Add(5 * time.Second)
	var dump string
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/debug/pprof/goroutine?debug=1")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		dump = string(b)
		if strings.Contains(dump, `"job_id":"`+v.ID+`"`) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{
		`"job_id":"` + v.ID + `"`,
		`"tenant":"acme"`,
		`"balancer":"`,
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("goroutine dump missing pprof label %s", want)
		}
	}
	close(release)
	waitDone(t, ts, v.ID)
}
