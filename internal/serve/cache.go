package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
)

// Artifacts is one job's complete output: the byte-exact documents a cache
// hit must reproduce. Steps records how many solver timesteps were executed
// to produce them (re-executed crashed work included) — a cache hit serves
// the same bytes with Steps work of zero.
type Artifacts struct {
	// Tables is the JSON-lines tables document: the run's own rows plus
	// any selected paper tables (overd.EmitRunJSON + overd.EmitTablesJSON).
	Tables []byte
	// Trace is the trace-summary JSON (per-rank busy/wait decomposition).
	Trace []byte
	// Metrics is the run's metrics-registry JSON export.
	Metrics []byte
	// Chrome is the run's full virtual-time Chrome trace-event document;
	// GET /jobs/{id}/spans?format=chrome merges wall-clock service spans
	// into it. Deterministic like every other artifact.
	Chrome []byte
	// Steps is the solver timestep count executed to produce the bytes.
	Steps int
}

// Size returns the byte footprint charged against the cache budget.
func (a *Artifacts) Size() int64 {
	return int64(len(a.Tables) + len(a.Trace) + len(a.Metrics) + len(a.Chrome))
}

// clone returns an independent copy so cached bytes can never be mutated by
// a caller holding a served slice.
func (a *Artifacts) clone() *Artifacts {
	return &Artifacts{
		Tables:  append([]byte(nil), a.Tables...),
		Trace:   append([]byte(nil), a.Trace...),
		Metrics: append([]byte(nil), a.Metrics...),
		Chrome:  append([]byte(nil), a.Chrome...),
		Steps:   a.Steps,
	}
}

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
	Bytes                   int64
}

// Cache is the content-addressed result store: hex SHA-256 of a job's
// canonical bytes → artifacts. The in-memory tier is an LRU bounded by a
// byte budget; an optional directory adds a write-through persistent tier
// that survives restarts and backstops evictions.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[string]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry
	dir     string
	stats   CacheStats
}

type cacheEntry struct {
	hash string
	art  *Artifacts
}

// NewCache returns a cache with the given in-memory byte budget (<= 0
// means a modest 64 MiB default) and optional persistent directory ("" =
// memory only). The directory is created on first use.
func NewCache(budget int64, dir string) *Cache {
	if budget <= 0 {
		budget = 64 << 20
	}
	return &Cache{
		budget:  budget,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		dir:     dir,
	}
}

var hashRe = regexp.MustCompile(`^[0-9a-f]{64}$`)

// Get returns a copy of the artifacts stored under hash, consulting memory
// first and then the persistent tier (re-warming memory on a disk hit).
func (c *Cache) Get(hash string) (*Artifacts, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*cacheEntry).art.clone(), true
	}
	if art, ok := c.readDisk(hash); ok {
		c.stats.Hits++
		c.insert(hash, art)
		return art.clone(), true
	}
	c.stats.Misses++
	return nil, false
}

// Put stores artifacts under hash, evicting least-recently-used entries
// until the memory tier fits its budget, and writes through to the
// persistent tier when one is configured. Oversized single entries still
// serve the current caller but are only kept on disk.
func (c *Cache) Put(hash string, art *Artifacts) error {
	if !hashRe.MatchString(hash) {
		return fmt.Errorf("serve: cache key %q is not a hex sha-256", hash)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var diskErr error
	if c.dir != "" {
		diskErr = c.writeDisk(hash, art)
	}
	if _, dup := c.entries[hash]; dup {
		return diskErr // deterministic artifacts: an overwrite changes nothing
	}
	kept := art.clone()
	if kept.Size() <= c.budget {
		c.insert(hash, kept)
	}
	return diskErr
}

// insert adds an entry (assumed absent) and evicts from the back until the
// budget holds. Caller holds the lock.
func (c *Cache) insert(hash string, art *Artifacts) {
	c.entries[hash] = c.lru.PushFront(&cacheEntry{hash: hash, art: art})
	c.used += art.Size()
	for c.used > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.hash)
		c.used -= e.art.Size()
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.Bytes = c.used
	return s
}

// Persistent tier: one directory per hash holding the exact artifact bytes
// plus a small steps file. Files are written via a temp name + rename so a
// crashed write can never serve a torn artifact.

func (c *Cache) entryDir(hash string) string {
	return filepath.Join(c.dir, hash[:2], hash)
}

// diskFiles are the persisted artifact documents. chrome.json joined the
// set with the span layer; entries written before it lack the file and read
// back as misses (a cold re-run, never a torn artifact).
var diskFiles = []string{"tables.jsonl", "trace.json", "metrics.json", "chrome.json"}

func (c *Cache) writeDisk(hash string, art *Artifacts) error {
	dir := c.entryDir(hash)
	if _, err := os.Stat(filepath.Join(dir, diskFiles[len(diskFiles)-1])); err == nil {
		return nil // already stored; artifacts are deterministic
	}
	tmp := dir + ".tmp"
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("serve: cache dir: %w", err)
	}
	for i, b := range [][]byte{art.Tables, art.Trace, art.Metrics, art.Chrome} {
		if err := os.WriteFile(filepath.Join(tmp, diskFiles[i]), b, 0o644); err != nil {
			return fmt.Errorf("serve: cache write: %w", err)
		}
	}
	if err := os.WriteFile(filepath.Join(tmp, "steps"), []byte(fmt.Sprintf("%d\n", art.Steps)), 0o644); err != nil {
		return fmt.Errorf("serve: cache write: %w", err)
	}
	if err := os.Rename(tmp, dir); err != nil {
		// An entry written before chrome.json joined the artifact set blocks
		// the rename; replace it wholesale (the other three documents are
		// byte-identical by determinism, so nothing of value is lost).
		if _, statErr := os.Stat(filepath.Join(dir, diskFiles[len(diskFiles)-1])); os.IsNotExist(statErr) {
			if _, oldErr := os.Stat(filepath.Join(dir, diskFiles[0])); oldErr == nil {
				if rmErr := os.RemoveAll(dir); rmErr == nil {
					if err = os.Rename(tmp, dir); err == nil {
						return nil
					}
				}
			}
		}
		// A concurrent writer may have won the rename; that copy is
		// byte-identical by construction, so losing the race is fine.
		if _, statErr := os.Stat(filepath.Join(dir, diskFiles[0])); statErr == nil {
			_ = os.RemoveAll(tmp)
			return nil
		}
		return fmt.Errorf("serve: cache rename: %w", err)
	}
	return nil
}

func (c *Cache) readDisk(hash string) (*Artifacts, bool) {
	if c.dir == "" || !hashRe.MatchString(hash) {
		return nil, false
	}
	dir := c.entryDir(hash)
	var bufs [4][]byte
	for i, name := range diskFiles {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, false
		}
		bufs[i] = b
	}
	art := &Artifacts{Tables: bufs[0], Trace: bufs[1], Metrics: bufs[2], Chrome: bufs[3]}
	if b, err := os.ReadFile(filepath.Join(dir, "steps")); err == nil {
		fmt.Sscanf(string(b), "%d", &art.Steps)
	}
	return art, true
}
