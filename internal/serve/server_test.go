package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"overd/internal/metrics"
)

// viewResp mirrors the jobView JSON for decoding in tests.
type viewResp struct {
	ID            string `json:"id"`
	Hash          string `json:"hash"`
	Tenant        string `json:"tenant"`
	Status        string `json:"status"`
	Cache         string `json:"cache"`
	Cached        bool   `json:"cached"`
	QueuePosition int    `json:"queue_position"`
	StepsExecuted int    `json:"steps_executed"`
	Error         string `json:"error"`
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body, tenant string) (*http.Response, viewResp) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v viewResp
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatalf("decoding POST response %q: %v", b, err)
		}
	} else {
		v.Error = string(b)
	}
	return resp, v
}

func waitDone(t *testing.T, ts *httptest.Server, id string) viewResp {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v viewResp
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v.Status == string(StatusDone) || v.Status == string(StatusFailed) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return viewResp{}
}

func getArtifact(t *testing.T, ts *httptest.Server, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result?artifact=" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact %s for %s: status %d: %s", name, id, resp.StatusCode, b)
	}
	return b
}

// promCounter reads one global counter from the server's /metrics page.
func promCounter(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := metrics.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	for _, f := range fams {
		for _, smp := range f.Samples {
			if smp.Name == name {
				return smp.Value
			}
		}
	}
	return 0
}

// TestServerCacheHitByteIdenticalZeroSteps is the acceptance pin for the
// tentpole: the second identical POST is served from the cache, its three
// artifacts are byte-identical to the first response's, and no solver step
// runs for it.
func TestServerCacheHitByteIdenticalZeroSteps(t *testing.T) {
	runs := 0
	var mu sync.Mutex
	counted := func(ctx context.Context, job Job, progress func(Event)) (*Artifacts, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return RunJob(ctx, job, progress)
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: counted})

	body := `{"case":"airfoil","nodes":4,"steps":2,"scale":0.05}`
	resp1, v1 := postJob(t, ts, body, "acme")
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST status %d", resp1.StatusCode)
	}
	if v1.Cache != string(CacheMiss) {
		t.Fatalf("first POST cache = %q, want miss", v1.Cache)
	}
	done1 := waitDone(t, ts, v1.ID)
	if done1.Status != "done" || done1.Cached {
		t.Fatalf("first job: %+v", done1)
	}
	if done1.StepsExecuted != 2 {
		t.Errorf("first job steps_executed = %d, want 2", done1.StepsExecuted)
	}
	first := map[string][]byte{}
	for _, a := range []string{"tables", "trace", "metrics"} {
		first[a] = getArtifact(t, ts, v1.ID, a)
		if len(first[a]) == 0 {
			t.Fatalf("artifact %s is empty", a)
		}
	}
	stepsAfter1 := promCounter(t, ts, "overd_serve_solver_steps_total")
	if stepsAfter1 != 2 {
		t.Errorf("solver_steps_total = %g after first job, want 2", stepsAfter1)
	}

	// Identical job, different tenant, fields spelled in another order:
	// must be a cache hit with byte-identical artifacts and zero steps.
	resp2, v2 := postJob(t, ts, `{"scale":0.05,"steps":2,"nodes":4,"case":"airfoil"}`, "zenith")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST status %d, want 200 (cache hit)", resp2.StatusCode)
	}
	if v2.Cache != string(CacheHit) || !v2.Cached || v2.Status != "done" {
		t.Fatalf("second POST: %+v, want an immediately-done cache hit", v2)
	}
	if v2.ID == v1.ID {
		t.Error("cache hit reused the first job id")
	}
	if v2.Hash != v1.Hash {
		t.Errorf("hashes differ: %s vs %s", v1.Hash, v2.Hash)
	}
	if v2.StepsExecuted != 0 {
		t.Errorf("cache hit steps_executed = %d, want 0", v2.StepsExecuted)
	}
	for _, a := range []string{"tables", "trace", "metrics"} {
		got := getArtifact(t, ts, v2.ID, a)
		if !bytes.Equal(got, first[a]) {
			t.Errorf("artifact %s differs between first run and cache hit", a)
		}
	}
	mu.Lock()
	if runs != 1 {
		t.Errorf("runner executed %d times, want 1", runs)
	}
	mu.Unlock()
	if got := promCounter(t, ts, "overd_serve_solver_steps_total"); got != stepsAfter1 {
		t.Errorf("solver_steps_total moved %g -> %g on a cache hit", stepsAfter1, got)
	}
	if got := promCounter(t, ts, "overd_serve_cache_hits_total"); got != 1 {
		t.Errorf("cache_hits_total = %g, want 1", got)
	}
	if got := promCounter(t, ts, "overd_serve_jobs_accepted_total"); got != 2 {
		t.Errorf("jobs_accepted_total = %g, want 2", got)
	}
}

// TestServerAdmissionControl pins the 429 path: with the single worker
// pinned on a job and the queue at capacity, the next POST is rejected
// with Retry-After, and succeeds once the queue drains.
func TestServerAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	stub := func(_ context.Context, job Job, progress func(Event)) (*Artifacts, error) {
		started <- job.Tenant
		<-release
		return art(job.Case, 8), nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Runner: stub})
	defer close(release)

	mkBody := func(steps int) string {
		return fmt.Sprintf(`{"case":"airfoil","steps":%d}`, steps)
	}
	resp, v1 := postJob(t, ts, mkBody(1), "acme")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST 1: status %d", resp.StatusCode)
	}
	<-started // worker is now pinned on job 1; queue is empty
	for i := 2; i <= 3; i++ {
		if resp, _ := postJob(t, ts, mkBody(i), "acme"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d: status %d", i, resp.StatusCode)
		}
	}
	resp4, v4 := postJob(t, ts, mkBody(4), "acme")
	if resp4.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity POST: status %d, want 429", resp4.StatusCode)
	}
	if resp4.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if !strings.Contains(v4.Error, "queue full") {
		t.Errorf("429 body: %s", v4.Error)
	}
	if got := promCounter(t, ts, "overd_serve_jobs_rejected_total"); got != 1 {
		t.Errorf("jobs_rejected_total = %g, want 1", got)
	}
	// Draining the queue re-opens admission.
	release <- struct{}{}
	<-started // job 2 picked up; one slot free
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := postJob(t, ts, mkBody(4), "acme")
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admission never re-opened after drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = v1
}

// TestServerTenantFairness pins round-robin scheduling: a tenant flooding
// the queue cannot starve another tenant's single job — with one worker,
// tenant B's job runs second, not last.
func TestServerTenantFairness(t *testing.T) {
	var mu sync.Mutex
	var order []string
	stub := func(_ context.Context, job Job, progress func(Event)) (*Artifacts, error) {
		mu.Lock()
		order = append(order, job.Tenant)
		mu.Unlock()
		return art(job.Case, 8), nil
	}
	s, err := NewServer(Config{Workers: 1, QueueDepth: 16, Runner: stub})
	if err != nil {
		t.Fatal(err)
	}
	// Queue everything before starting the worker so arrival order is
	// deterministic: A floods three jobs, then B submits one.
	var ids []string
	for i, tenant := range []string{"flood", "flood", "flood", "patient"} {
		j, err := Job{Case: "airfoil", Steps: i + 1, Tenant: tenant}.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		j.Tenant = tenant
		js, cache, err := s.Submit(j)
		if err != nil || cache != CacheMiss {
			t.Fatalf("submit %d: cache=%v err=%v", i, cache, err)
		}
		ids = append(ids, js.id)
	}
	s.Start()
	for _, id := range ids {
		js, _ := s.Job(id)
		select {
		case <-js.done:
		case <-time.After(10 * time.Second):
			t.Fatalf("job %s never finished", id)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"flood", "patient", "flood", "flood"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("execution order %v, want %v (round-robin across tenants)", order, want)
	}
}

// TestServerDedupInflight: an identical job submitted while the first is
// still queued or running coalesces onto it instead of running twice.
func TestServerDedupInflight(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	runs := 0
	stub := func(_ context.Context, job Job, progress func(Event)) (*Artifacts, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		<-release
		return art(job.Case, 8), nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: stub})
	body := `{"case":"airfoil","steps":3}`
	_, v1 := postJob(t, ts, body, "acme")
	_, v2 := postJob(t, ts, body, "zenith")
	if v2.Cache != string(CacheInflight) {
		t.Fatalf("second POST cache = %q, want inflight", v2.Cache)
	}
	if v2.ID != v1.ID {
		t.Errorf("dedup returned a different job id (%s vs %s)", v2.ID, v1.ID)
	}
	close(release)
	waitDone(t, ts, v1.ID)
	mu.Lock()
	if runs != 1 {
		t.Errorf("runner executed %d times, want 1", runs)
	}
	mu.Unlock()
	if got := promCounter(t, ts, "overd_serve_jobs_deduped_total"); got != 1 {
		t.Errorf("jobs_deduped_total = %g, want 1", got)
	}
}

// TestServerEventsStream verifies the NDJSON progress stream: queued,
// start, one step event per timestep (with virtual clock and snapshot),
// and a terminal done event, after which the stream closes.
func TestServerEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, v := postJob(t, ts, `{"case":"airfoil","nodes":4,"steps":2,"scale":0.05}`, "")
	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}
	var types []string
	var steps []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		types = append(types, e.Type)
		if e.Type == "step" {
			steps = append(steps, e)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := "queued,start,step,step,done"
	if got := strings.Join(types, ","); got != want {
		t.Fatalf("event sequence %q, want %q", got, want)
	}
	if len(steps) != 2 || steps[0].Step != 0 || steps[1].Step != 1 {
		t.Errorf("step indices wrong: %+v", steps)
	}
	if steps[1].VClock <= steps[0].VClock || steps[0].VClock <= 0 {
		t.Errorf("virtual clocks not increasing: %g then %g", steps[0].VClock, steps[1].VClock)
	}
	for i, e := range steps {
		if e.Snapshot == nil {
			t.Fatalf("step %d missing snapshot", i)
		}
		if e.Snapshot.MsgsSent <= 0 || e.Snapshot.Flow <= 0 {
			t.Errorf("step %d snapshot looks empty: %+v", i, *e.Snapshot)
		}
	}
}

// TestServerHTTPErrors covers the API's refusal paths.
func TestServerHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Invalid job.
	resp, v := postJob(t, ts, `{"case":"wing47"}`, "")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(v.Error, "wing47") {
		t.Errorf("bad case: status %d body %s", resp.StatusCode, v.Error)
	}
	// Unknown field (typo protection for the cache key).
	if resp, _ := postJob(t, ts, `{"case":"airfoil","scael":2}`, ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", resp.StatusCode)
	}
	// Unknown job id.
	for _, path := range []string{"/jobs/j-999999", "/jobs/j-999999/result", "/jobs/j-999999/events"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, r.StatusCode)
		}
	}
	// Result of an unfinished job is 202 with status, not an artifact.
	relDone := make(chan struct{})
	defer close(relDone)
	_, ts2 := newTestServer(t, Config{Workers: 1, Runner: func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		<-relDone
		return art("a", 4), nil
	}})
	_, v2 := postJob(t, ts2, `{"case":"airfoil"}`, "")
	r2, err := http.Get(ts2.URL + "/jobs/" + v2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusAccepted {
		t.Errorf("unfinished result: status %d, want 202", r2.StatusCode)
	}
	// Bad artifact name on a finished job.
	_, ts3 := newTestServer(t, Config{Workers: 1, Runner: func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		return art("a", 4), nil
	}})
	_, v3 := postJob(t, ts3, `{"case":"airfoil"}`, "")
	waitDone(t, ts3, v3.ID)
	r3, err := http.Get(ts3.URL + "/jobs/" + v3.ID + "/result?artifact=bogus")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus artifact: status %d, want 400", r3.StatusCode)
	}
}

// TestServerFailedJob surfaces runner errors as a failed status and a 409
// result.
func TestServerFailedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Runner: func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		return nil, fmt.Errorf("synthetic failure")
	}})
	_, v := postJob(t, ts, `{"case":"airfoil"}`, "")
	done := waitDone(t, ts, v.ID)
	if done.Status != "failed" || !strings.Contains(done.Error, "synthetic failure") {
		t.Fatalf("job = %+v, want failed with synthetic failure", done)
	}
	r, err := http.Get(ts.URL + "/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Errorf("failed job result: status %d, want 409", r.StatusCode)
	}
	if got := promCounter(t, ts, "overd_serve_jobs_failed_total"); got != 1 {
		t.Errorf("jobs_failed_total = %g, want 1", got)
	}
}

// TestServerPersistentCacheAcrossRestart: with a cache directory, a new
// server instance serves a previous instance's results byte-identically.
func TestServerPersistentCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"case":"airfoil","nodes":4,"steps":2,"scale":0.05}`

	_, ts1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	_, v1 := postJob(t, ts1, body, "")
	waitDone(t, ts1, v1.ID)
	tables1 := getArtifact(t, ts1, v1.ID, "tables")

	_, ts2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	resp, v2 := postJob(t, ts2, body, "")
	if resp.StatusCode != http.StatusOK || v2.Cache != string(CacheHit) {
		t.Fatalf("restarted server: status %d cache %q, want 200 hit", resp.StatusCode, v2.Cache)
	}
	if !bytes.Equal(getArtifact(t, ts2, v2.ID, "tables"), tables1) {
		t.Error("persistent cache returned different bytes after restart")
	}
}

// TestServerShutdownDrains: Shutdown waits for queued jobs to finish.
func TestServerShutdownDrains(t *testing.T) {
	var mu sync.Mutex
	ran := 0
	s, err := NewServer(Config{Workers: 2, Runner: func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		ran++
		mu.Unlock()
		return art(job.Case, 4), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		j, err := Job{Case: "airfoil", Steps: i}.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	s.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran != 4 {
		t.Errorf("shutdown drained %d jobs, want 4", ran)
	}
	if _, _, err := s.Submit(Job{Case: "airfoil", Machine: "SP2", Nodes: 8, Steps: 9, Scale: 1, CheckEvery: 5}); err != ErrShuttingDown {
		t.Errorf("post-shutdown Submit error = %v, want ErrShuttingDown", err)
	}
}
