package serve

import (
	"fmt"
	"strings"
)

// Structured logging: every operational line the server emits is key=value
// formatted — always carrying event, job_id, tenant and the server's
// incarnation id — and, when the line concerns a job, correlated into that
// job's span record so the flight recorder can replay a job's log context
// right next to its wall-clock spans. Config.Logf stays the single external
// sink; this layer only formats and correlates.
//
// Two tiers keep the sink quiet:
//
//   - annotate: span correlation only. Routine lifecycle notes (dedup,
//     retries, cancel requests) are post-mortem context, not operator
//     pages; they land in the flight recorder and never reach the sink.
//   - logEvent / logPanic: sink + correlation. Reserved for lines an
//     operator should see — the same call sites that used raw Logf before
//     this layer existed (panic stacks, journal trouble, replay notes).

// kv is one structured log field.
type kv struct{ key, val string }

// formatKV renders "event=<e> job_id=… tenant=… incarnation=… k=v …".
// Values containing spaces, quotes or '=' are %q-quoted so the line stays
// machine-parseable with a naive splitter.
func (s *Server) formatKV(js *jobState, event string, fields []kv) string {
	var b strings.Builder
	b.WriteString("event=")
	b.WriteString(event)
	if js != nil {
		b.WriteString(" job_id=")
		b.WriteString(js.id)
		b.WriteString(" tenant=")
		b.WriteString(kvQuote(js.tenant))
	}
	b.WriteString(" incarnation=")
	b.WriteString(s.incarnation)
	for _, f := range fields {
		b.WriteByte(' ')
		b.WriteString(f.key)
		b.WriteByte('=')
		b.WriteString(kvQuote(f.val))
	}
	return b.String()
}

func kvQuote(v string) string {
	if v == "" || strings.ContainsAny(v, " \t\n\"=") {
		return fmt.Sprintf("%q", v)
	}
	return v
}

// annotate correlates a structured line with a job's span record only; the
// Logf sink never sees it.
func (s *Server) annotate(js *jobState, event string, fields ...kv) {
	rec := js.spans.Load()
	if rec == nil {
		return
	}
	rec.Log(s.formatKV(js, event, fields))
}

// logEvent formats one structured line for the Logf sink and correlates it
// with the job's span record. js may be nil for server-scoped lines.
func (s *Server) logEvent(js *jobState, event string, fields ...kv) {
	if s.cfg.Logf == nil && (js == nil || js.spans.Load() == nil) {
		return
	}
	line := s.formatKV(js, event, fields)
	if js != nil {
		js.spans.Load().Log(line)
	}
	if s.cfg.Logf != nil {
		s.cfg.Logf("%s", line)
	}
}

// logPanic sends the structured panic line with the full stack attached to
// the sink in a single write — the stack must land in the first sink line,
// where operators (and the supervision tests) expect it — while the span
// record gets only the stackless summary (bounded retention).
func (s *Server) logPanic(js *jobState, p any, stack []byte) {
	line := s.formatKV(js, "panic", []kv{{"panic", sanitizePanic(p)}})
	js.spans.Load().Log(line)
	if s.cfg.Logf != nil {
		s.cfg.Logf("%s\n%s", line, stack)
	}
}
