package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"testing"
)

// fakeHash builds a syntactically valid cache key from a short tag.
func fakeHash(tag string) string {
	sum := sha256.Sum256([]byte(tag))
	return hex.EncodeToString(sum[:])
}

func art(tag string, n int) *Artifacts {
	return &Artifacts{
		Tables:  bytes.Repeat([]byte(tag[:1]), n),
		Trace:   []byte("{\"trace\":\"" + tag + "\"}"),
		Metrics: []byte("{\"metrics\":\"" + tag + "\"}"),
		Steps:   4,
	}
}

func TestCacheHitReturnsIdenticalBytes(t *testing.T) {
	c := NewCache(1<<20, "")
	h := fakeHash("a")
	orig := art("a", 100)
	if err := c.Put(h, orig); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(h)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got.Tables, orig.Tables) || !bytes.Equal(got.Trace, orig.Trace) ||
		!bytes.Equal(got.Metrics, orig.Metrics) || got.Steps != orig.Steps {
		t.Error("cached artifacts differ from stored ones")
	}
	// Mutating the served copy must not poison the cache.
	got.Tables[0] = 'X'
	again, _ := c.Get(h)
	if !bytes.Equal(again.Tables, orig.Tables) {
		t.Error("served slice aliases the cached bytes")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 0 {
		t.Errorf("stats = %+v, want 2 hits 0 misses", s)
	}
}

func TestCacheLRUEvictionByByteBudget(t *testing.T) {
	// Each artifact is ~60 bytes of payload; budget fits roughly two.
	a0, a1, a2 := art("a", 20), art("b", 20), art("c", 20)
	budget := a0.Size() + a1.Size() + 10
	c := NewCache(budget, "")
	for i, a := range []*Artifacts{a0, a1, a2} {
		if err := c.Put(fakeHash(fmt.Sprintf("k%d", i)), a); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get(fakeHash("k0")); ok {
		t.Error("oldest entry survived past the byte budget")
	}
	for _, k := range []string{"k1", "k2"} {
		if _, ok := c.Get(fakeHash(k)); !ok {
			t.Errorf("%s evicted although it fits the budget", k)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	if s.Bytes > budget {
		t.Errorf("resident bytes %d exceed budget %d", s.Bytes, budget)
	}
}

func TestCacheLRUTouchOnGet(t *testing.T) {
	a0, a1, a2 := art("a", 20), art("b", 20), art("c", 20)
	c := NewCache(a0.Size()+a1.Size()+10, "")
	c.Put(fakeHash("k0"), a0)
	c.Put(fakeHash("k1"), a1)
	c.Get(fakeHash("k0")) // k0 becomes most recent; k1 is now LRU
	c.Put(fakeHash("k2"), a2)
	if _, ok := c.Get(fakeHash("k1")); ok {
		t.Error("LRU entry survived")
	}
	if _, ok := c.Get(fakeHash("k0")); !ok {
		t.Error("recently touched entry was evicted")
	}
}

func TestCacheRejectsBadKey(t *testing.T) {
	c := NewCache(0, "")
	if err := c.Put("not-a-hash", art("a", 4)); err == nil {
		t.Error("malformed key accepted")
	}
}

func TestCacheDiskRoundTripByteExact(t *testing.T) {
	dir := t.TempDir()
	h := fakeHash("disk")
	orig := art("d", 500)
	orig.Steps = 7

	w := NewCache(1<<20, dir)
	if err := w.Put(h, orig); err != nil {
		t.Fatal(err)
	}

	// A fresh cache (fresh process) over the same directory must serve the
	// identical bytes from the persistent tier.
	r := NewCache(1<<20, dir)
	got, ok := r.Get(h)
	if !ok {
		t.Fatal("disk tier miss")
	}
	if !bytes.Equal(got.Tables, orig.Tables) || !bytes.Equal(got.Trace, orig.Trace) ||
		!bytes.Equal(got.Metrics, orig.Metrics) {
		t.Error("disk round trip changed artifact bytes")
	}
	if got.Steps != 7 {
		t.Errorf("steps = %d, want 7", got.Steps)
	}
	// The disk hit re-warmed memory: a second Get must not touch disk
	// (verified indirectly: still a hit after wiping the directory).
	wipeDir(t, dir)
	if _, ok := r.Get(h); !ok {
		t.Error("entry not re-warmed into memory after disk hit")
	}
}

func TestCacheEvictedEntryBackstoppedByDisk(t *testing.T) {
	dir := t.TempDir()
	a0, a1, a2 := art("a", 20), art("b", 20), art("c", 20)
	c := NewCache(a0.Size()+a1.Size()+10, dir)
	c.Put(fakeHash("k0"), a0)
	c.Put(fakeHash("k1"), a1)
	c.Put(fakeHash("k2"), a2) // evicts k0 from memory, not from disk
	got, ok := c.Get(fakeHash("k0"))
	if !ok {
		t.Fatal("evicted entry lost despite persistent tier")
	}
	if !bytes.Equal(got.Tables, a0.Tables) {
		t.Error("disk backstop served wrong bytes")
	}
}

func wipeDir(t *testing.T, dir string) {
	t.Helper()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
}
