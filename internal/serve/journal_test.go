package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// journalServer builds a journaled server around a stub runner without the
// httptest scaffolding (these tests drive Submit/kill directly).
func journalServer(t *testing.T, jdir, cdir string, runner Runner) *Server {
	t.Helper()
	s, err := NewServer(Config{
		Workers: 1, JournalDir: jdir, CacheDir: cdir,
		RetryBackoff: time.Millisecond, Runner: runner,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func submitSteps(t *testing.T, s *Server, steps int) *jobState {
	t.Helper()
	j, err := Job{Case: "airfoil", Steps: steps}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	js, cache, err := s.Submit(j)
	if err != nil {
		t.Fatal(err)
	}
	if cache == CacheInflight {
		t.Fatalf("unexpected dedup for steps=%d", steps)
	}
	return js
}

// TestJournalReplayAfterKill is the tentpole's crash-tolerance pin: a
// simulated kill -9 with one job done, one running and one queued loses
// nothing — the restart serves the done job from cache and re-runs the
// other two under their original ids, byte-identically.
func TestJournalReplayAfterKill(t *testing.T) {
	jdir, cdir := t.TempDir(), t.TempDir()
	block := make(chan struct{})
	running := make(chan struct{}, 8)
	var mu sync.Mutex
	var invoked []int
	runner := func(ctx context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		mu.Lock()
		invoked = append(invoked, job.Steps)
		mu.Unlock()
		if job.Steps >= 2 {
			running <- struct{}{}
			select {
			case <-block:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return art(fmt.Sprintf("steps-%d", job.Steps), job.Steps), nil
	}

	s1 := journalServer(t, jdir, cdir, runner)
	s1.Start()
	j1 := submitSteps(t, s1, 1) // completes immediately
	select {
	case <-j1.done:
	case <-time.After(10 * time.Second):
		t.Fatal("job 1 never finished")
	}
	j2 := submitSteps(t, s1, 2) // blocks on the runner
	<-running
	j3 := submitSteps(t, s1, 3) // stays queued behind it
	s1.kill()

	// The dead server published nothing for jobs 2 and 3.
	s1.mu.Lock()
	if j2.status != StatusRunning || j3.status != StatusQueued {
		t.Fatalf("post-kill states: %s/%s, want running/queued (a dead process updates nothing)",
			j2.status, j3.status)
	}
	s1.mu.Unlock()

	// Model the real-kill window between the artifact cache write and the
	// done marker: an admit whose artifacts are already cached. Replay must
	// serve it from cache immediately instead of re-running it.
	jb := j1.job
	jb.Tenant = ""
	jbJSON, _ := json.Marshal(jb)
	rec, _ := json.Marshal(journalRecord{Type: "admit", Seq: 4, ID: "j-000004", Tenant: j1.tenant, Job: jbJSON})
	wal, err := os.OpenFile(filepath.Join(jdir, journalName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write(append(rec, '\n')); err != nil {
		t.Fatal(err)
	}
	wal.Close()

	// Restart on the same directories: the done-marked job 1 is compacted
	// away, the cached admit completes at replay time, and jobs 2 and 3
	// re-queue under their original ids, in admission order.
	s2 := journalServer(t, jdir, cdir, runner)
	if _, stale := s2.Job(j1.id); stale {
		t.Errorf("done-marked job %s survived compaction", j1.id)
	}
	r1, ok := s2.Job("j-000004")
	if !ok {
		t.Fatal("cached admit lost across restart")
	}
	s2.mu.Lock()
	if r1.status != StatusDone || !r1.cached || !r1.replayed {
		t.Errorf("replayed cached job: status=%s cached=%v replayed=%v", r1.status, r1.cached, r1.replayed)
	}
	s2.mu.Unlock()
	close(block) // let the re-run jobs finish
	s2.Start()
	for _, orig := range []*jobState{j2, j3} {
		r, ok := s2.Job(orig.id)
		if !ok {
			t.Fatalf("job %s lost across restart", orig.id)
		}
		select {
		case <-r.done:
		case <-time.After(10 * time.Second):
			t.Fatalf("replayed job %s never finished", orig.id)
		}
		s2.mu.Lock()
		if r.status != StatusDone || !r.replayed {
			t.Errorf("replayed job %s: status=%s replayed=%v", orig.id, r.status, r.replayed)
		}
		if string(r.art.Tables) != string(art(fmt.Sprintf("steps-%d", orig.job.Steps), orig.job.Steps).Tables) {
			t.Errorf("replayed job %s artifacts differ from the oracle", orig.id)
		}
		s2.mu.Unlock()
	}
	if got := s2.reg.CounterValue("overd_serve_jobs_replayed_total", 0); got != 3 {
		t.Errorf("jobs_replayed_total = %g, want 3", got)
	}
	// New ids keep counting past the journal's high-water mark: no reuse.
	j4 := submitSteps(t, s2, 2)
	for _, old := range []string{j1.id, j2.id, j3.id, "j-000004"} {
		if j4.id == old {
			t.Fatalf("restart reused job id %s", old)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// A third start finds a fully-compacted journal: nothing pending.
	s3 := journalServer(t, jdir, cdir, runner)
	if got := s3.reg.CounterValue("overd_serve_jobs_replayed_total", 0); got != 0 {
		t.Errorf("third start replayed %g jobs, want 0", got)
	}
	ctx3, cancel3 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel3()
	s3.Start()
	if err := s3.Shutdown(ctx3); err != nil {
		t.Fatal(err)
	}
}

// TestJournalTornTailTolerated: a crash mid-append may leave one partial
// final line; replay drops exactly that and keeps everything fsync'd
// before it. Corruption anywhere else refuses to load.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	adm := func(seq int) string {
		job, _ := json.Marshal(Job{Case: "airfoil", Steps: seq})
		rec, _ := json.Marshal(journalRecord{Type: "admit", Seq: seq, ID: fmt.Sprintf("j-%06d", seq), Tenant: "t", Job: job})
		return string(rec) + "\n"
	}
	body := `{"type":"meta","seq":9}` + "\n" + adm(1) + adm(2) + `{"type":"admit","seq":3,"id":"j-0000`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	pending, maxSeq, err := replayJournal(path)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(pending) != 2 || pending[0].ID != "j-000001" || pending[1].ID != "j-000002" {
		t.Fatalf("pending = %+v, want the two whole admits in order", pending)
	}
	if maxSeq != 9 {
		t.Errorf("maxSeq = %d, want 9 (meta record wins)", maxSeq)
	}

	// The same partial line in the middle is corruption, not a torn tail.
	body = `{"type":"meta","seq":9}` + "\n" + `{"type":"admit","seq":1,"id":"j-00` + "\n" + adm(2)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := replayJournal(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("mid-file corruption not refused: %v", err)
	}
}

// TestJournalCancelledJobsStayCancelled: a cancelled queued job gets its
// terminal marker and is NOT resurrected by a restart.
func TestJournalCancelledJobsStayCancelled(t *testing.T) {
	jdir := t.TempDir()
	block := make(chan struct{})
	running := make(chan struct{}, 8)
	runner := func(ctx context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		running <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return art("x", job.Steps), nil
	}
	s1 := journalServer(t, jdir, "", runner)
	s1.Start()
	submitSteps(t, s1, 1)
	<-running
	j2 := submitSteps(t, s1, 2)
	if _, err := s1.Cancel(j2.id); err != nil {
		t.Fatal(err)
	}
	s1.kill()

	s2 := journalServer(t, jdir, "", runner)
	if _, resurrected := s2.Job(j2.id); resurrected {
		t.Error("cancelled job came back from the journal")
	}
	// Job 1 (killed mid-run, no cache) is the only replay.
	if got := s2.reg.CounterValue("overd_serve_jobs_replayed_total", 0); got != 1 {
		t.Errorf("jobs_replayed_total = %g, want 1", got)
	}
	close(block) // let the replayed job finish before draining
	s2.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
