package metrics

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// formatValue renders a float with the shortest representation that parses
// back to the identical bits, so values read from the exposition text
// compare exactly against in-process doubles. Non-finite values are
// sanitized to 0 (same convention as EmitRowsJSON).
func formatValue(v float64) string {
	return strconv.FormatFloat(sanitize(v), 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// writeLabels renders {rank="0",phase="flow"} (rank omitted for global
// metrics); extra appends le="..." for histogram buckets.
func (m *metric) writeLabels(b *strings.Builder, s series, extra string) {
	parts := make([]string, 0, 4)
	if !m.opts.Global {
		parts = append(parts, `rank="`+strconv.Itoa(s.rank)+`"`)
	}
	for i := range m.opts.Labels {
		parts = append(parts, m.labelName(i)+`="`+escapeLabelValue(m.labelValue(i, s.labs[i]))+`"`)
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	if len(parts) == 0 {
		return
	}
	b.WriteByte('{')
	b.WriteString(strings.Join(parts, ","))
	b.WriteByte('}')
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: metrics sorted by name,
// series by rank then label key. Gauge virtual-time stamps are NOT exported
// as Prometheus timestamps (they are virtual seconds, which scrapers would
// misread as epoch milliseconds); use WriteJSON for stamped values.
func (g *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range g.snapshotAll() {
		if m.opts.Help != "" {
			bw.WriteString("# HELP " + m.name + " " + escapeHelp(m.opts.Help) + "\n")
		}
		bw.WriteString("# TYPE " + m.name + " " + m.kind.String() + "\n")
		for _, s := range m.snapshot() {
			var b strings.Builder
			switch m.kind {
			case KindCounter, KindGauge:
				b.WriteString(m.name)
				m.writeLabels(&b, s, "")
				b.WriteByte(' ')
				b.WriteString(formatValue(s.vals[0]))
				b.WriteByte('\n')
			case KindHistogram:
				nb := len(m.opts.Buckets)
				cum := 0.0
				for i, ub := range m.opts.Buckets {
					cum += s.vals[i]
					b.WriteString(m.name + "_bucket")
					m.writeLabels(&b, s, `le="`+formatValue(ub)+`"`)
					b.WriteByte(' ')
					b.WriteString(formatValue(cum))
					b.WriteByte('\n')
				}
				count, sum := s.vals[nb], s.vals[nb+1]
				b.WriteString(m.name + "_bucket")
				m.writeLabels(&b, s, `le="+Inf"`)
				b.WriteString(" " + formatValue(count) + "\n")
				b.WriteString(m.name + "_sum")
				m.writeLabels(&b, s, "")
				b.WriteString(" " + formatValue(sum) + "\n")
				b.WriteString(m.name + "_count")
				m.writeLabels(&b, s, "")
				b.WriteString(" " + formatValue(count) + "\n")
			}
			if _, err := bw.WriteString(b.String()); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
