package metrics

import "sync"

// Interner maps arbitrary strings to small dense ints and back, so callers
// with string-valued dimensions (tenant names, endpoint paths) can use them
// as registry labels: pass Interner.ID as the label value and Interner.Name
// as the label's Namer. IDs are assigned in first-seen order, which makes a
// single-process export deterministic for a deterministic arrival order.
type Interner struct {
	mu    sync.Mutex
	ids   map[string]int
	names []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int)}
}

// ID returns the dense id for s, assigning the next one on first sight.
func (t *Interner) ID(s string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := len(t.names)
	t.ids[s] = id
	t.names = append(t.names, s)
	return id
}

// Name returns the string for id, or "?" for an id never assigned — a Namer
// must not panic on a stale export racing a new registration.
func (t *Interner) Name(id int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= len(t.names) {
		return "?"
	}
	return t.names[id]
}

// Len reports how many distinct strings have been interned.
func (t *Interner) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.names)
}
