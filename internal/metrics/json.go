package metrics

import (
	"encoding/json"
	"io"
	"strconv"
)

// jsonSeries is one exported series in the JSON document.
type jsonSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter/gauge value; for histograms it is the sum.
	Value float64 `json:"value"`
	// VTS is the gauge's virtual-time stamp (seconds on the modeled
	// machine), omitted for other kinds.
	VTS *float64 `json:"vts,omitempty"`
	// Buckets are the cumulative histogram counts aligned with the
	// metric's "buckets" bounds; Count includes the +Inf overflow.
	Buckets []float64 `json:"buckets,omitempty"`
	Count   *float64  `json:"count,omitempty"`
}

type jsonMetric struct {
	Name     string       `json:"name"`
	Type     string       `json:"type"`
	Help     string       `json:"help,omitempty"`
	Windowed bool         `json:"windowed,omitempty"`
	BucketLE []float64    `json:"bucket_le,omitempty"`
	Series   []jsonSeries `json:"series"`
}

type jsonDoc struct {
	Metrics []jsonMetric `json:"metrics"`
}

// WriteJSON writes every metric as a JSON document. Non-finite floats are
// sanitized to 0, matching the EmitRowsJSON convention, so the output is
// always valid JSON. Deterministic ordering mirrors WritePrometheus.
func (g *Registry) WriteJSON(w io.Writer) error {
	doc := jsonDoc{Metrics: []jsonMetric{}}
	for _, m := range g.snapshotAll() {
		jm := jsonMetric{
			Name:     m.name,
			Type:     m.kind.String(),
			Help:     m.opts.Help,
			Windowed: m.opts.Windowed,
			Series:   []jsonSeries{},
		}
		if m.kind == KindHistogram {
			for _, ub := range m.opts.Buckets {
				jm.BucketLE = append(jm.BucketLE, sanitize(ub))
			}
		}
		for _, s := range m.snapshot() {
			js := jsonSeries{Labels: map[string]string{}}
			if !m.opts.Global {
				js.Labels["rank"] = strconv.Itoa(s.rank)
			}
			for i := range m.opts.Labels {
				js.Labels[m.labelName(i)] = m.labelValue(i, s.labs[i])
			}
			if len(js.Labels) == 0 {
				js.Labels = nil
			}
			switch m.kind {
			case KindCounter:
				js.Value = sanitize(s.vals[0])
			case KindGauge:
				js.Value = sanitize(s.vals[0])
				ts := sanitize(s.vals[1])
				js.VTS = &ts
			case KindHistogram:
				nb := len(m.opts.Buckets)
				cum := 0.0
				for i := 0; i < nb; i++ {
					cum += s.vals[i]
					js.Buckets = append(js.Buckets, sanitize(cum))
				}
				count := sanitize(s.vals[nb])
				js.Count = &count
				js.Value = sanitize(s.vals[nb+1])
			}
			jm.Series = append(jm.Series, js)
		}
		doc.Metrics = append(doc.Metrics, jm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
