package metrics

import (
	"strings"
	"testing"
)

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	a := in.ID("alice")
	b := in.ID("bob")
	if a == b {
		t.Fatalf("distinct strings share id %d", a)
	}
	if got := in.ID("alice"); got != a {
		t.Errorf("re-interning alice: id %d, want %d", got, a)
	}
	if in.Name(a) != "alice" || in.Name(b) != "bob" {
		t.Errorf("names = %q, %q", in.Name(a), in.Name(b))
	}
	if in.Name(99) != "?" || in.Name(-1) != "?" {
		t.Errorf("out-of-range names = %q, %q, want ?", in.Name(99), in.Name(-1))
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
}

// TestInternerAsLabelNamer pins the intended use: a counter labeled by an
// interned string exports the original string, not the dense id.
func TestInternerAsLabelNamer(t *testing.T) {
	in := NewInterner()
	reg := New()
	reg.Reset(1)
	served := reg.Counter("test_served_total", Opts{
		Global: true,
		Labels: []Label{{Name: "tenant", Namer: in.Name}},
	})
	served.Add1(0, in.ID("acme"), 3)
	served.Add1(0, in.ID("zenith"), 1)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`test_served_total{tenant="acme"} 3`,
		`test_served_total{tenant="zenith"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got := reg.CounterValue("test_served_total", 0, in.ID("acme")); got != 3 {
		t.Errorf("CounterValue(acme) = %g, want 3", got)
	}
}
