package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed sample line.
type PromSample struct {
	// Name is the full sample name (including _bucket/_sum/_count for
	// histogram children).
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one metric family: a # TYPE line plus its samples.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// ParsePrometheus is a strict parser for the Prometheus text exposition
// format (the subset WritePrometheus emits, which is also valid for real
// scrapers). It enforces:
//
//   - metric and label names match the exposition-format grammar,
//   - every sample belongs to a family whose # TYPE line appeared first,
//   - histogram children use only _bucket/_sum/_count suffixes,
//   - no duplicate series (same name + label set),
//   - histogram buckets are cumulative (non-decreasing in le order),
//     include le="+Inf", and the +Inf bucket equals _count,
//   - counter values are finite and non-negative.
//
// It returns the families in input order.
func ParsePrometheus(r io.Reader) ([]PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var fams []*PromFamily
	byName := map[string]*PromFamily{}
	help := map[string]string{}
	seen := map[string]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, lineNo, &fams, byName, help); err != nil {
				return nil, err
			}
			continue
		}
		s, err := parseSample(line, lineNo)
		if err != nil {
			return nil, err
		}
		base := familyBase(s.Name, byName)
		fam, ok := byName[base]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q before its # TYPE line", lineNo, s.Name)
		}
		if err := checkSampleName(fam, s.Name, lineNo); err != nil {
			return nil, err
		}
		key := seriesKey(s)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		if fam.Type == "counter" {
			if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) || s.Value < 0 {
				return nil, fmt.Errorf("line %d: counter %s has invalid value %v", lineNo, s.Name, s.Value)
			}
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]PromFamily, len(fams))
	for i, f := range fams {
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
		out[i] = *f
	}
	return out, nil
}

func parseComment(line string, lineNo int, fams *[]*PromFamily, byName map[string]*PromFamily, help map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
		}
		text := ""
		if len(fields) == 4 {
			text = fields[3]
		}
		if f, ok := byName[fields[2]]; ok {
			f.Help = text
		} else {
			help[fields[2]] = text
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
		}
		typ := fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
		}
		name := fields[2]
		if _, dup := byName[name]; dup {
			return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
		}
		f := &PromFamily{Name: name, Type: typ, Help: help[name]}
		*fams = append(*fams, f)
		byName[name] = f
	}
	return nil
}

// familyBase maps a sample name to its family name, stripping histogram
// child suffixes only when the stripped name is a registered histogram.
func familyBase(name string, byName map[string]*PromFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f, exists := byName[base]; exists && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

func checkSampleName(fam *PromFamily, name string, lineNo int) error {
	if name == fam.Name {
		if fam.Type == "histogram" {
			return fmt.Errorf("line %d: histogram %s has bare sample (want _bucket/_sum/_count)", lineNo, name)
		}
		return nil
	}
	if fam.Type == "histogram" {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if name == fam.Name+suf {
				return nil
			}
		}
	}
	return fmt.Errorf("line %d: sample %q does not belong to family %s", lineNo, name, fam.Name)
}

func seriesKey(s PromSample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		b.WriteString("{" + k + "=" + s.Labels[k] + "}")
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func parseSample(line string, lineNo int) (PromSample, error) {
	var s PromSample
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
	}
	s.Name = rest[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("line %d: invalid metric name %q", lineNo, s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest, lineNo)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("line %d: expected value (and optional timestamp) after %q", lineNo, s.Name)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("line %d: bad value %q: %v", lineNo, fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("line %d: bad timestamp %q", lineNo, fields[1])
		}
	}
	return s, nil
}

// parseLabels parses a {name="value",...} block (rest starts at '{') and
// returns the labels plus the remainder of the line.
func parseLabels(rest string, lineNo int) (map[string]string, string, error) {
	labels := map[string]string{}
	rest = rest[1:] // consume '{'
	for {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return nil, "", fmt.Errorf("line %d: unterminated label block", lineNo)
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("line %d: malformed label pair near %q", lineNo, rest)
		}
		name := rest[:eq]
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("line %d: invalid label name %q", lineNo, name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("line %d: duplicate label %q", lineNo, name)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return nil, "", fmt.Errorf("line %d: label %q value must be quoted", lineNo, name)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return nil, "", fmt.Errorf("line %d: unterminated label value for %q", lineNo, name)
			}
			c := rest[0]
			if c == '"' {
				rest = rest[1:]
				break
			}
			if c == '\\' {
				if len(rest) < 2 {
					return nil, "", fmt.Errorf("line %d: dangling escape in label %q", lineNo, name)
				}
				switch rest[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("line %d: invalid escape \\%c in label %q", lineNo, rest[1], name)
				}
				rest = rest[2:]
				continue
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		labels[name] = val.String()
		rest = strings.TrimLeft(rest, " ")
		if rest != "" && rest[0] == ',' {
			rest = rest[1:]
			continue
		}
		if rest != "" && rest[0] == '}' {
			return labels, rest[1:], nil
		}
		return nil, "", fmt.Errorf("line %d: expected ',' or '}' after label %q", lineNo, name)
	}
}

// checkHistogram validates cumulative bucket monotonicity, the +Inf bucket,
// and _count consistency for every series of a histogram family.
func checkHistogram(fam *PromFamily) error {
	type hseries struct {
		le     []float64
		cum    []float64
		hasInf bool
		inf    float64
		count  float64
		hasCnt bool
	}
	byKey := map[string]*hseries{}
	keyOf := func(s PromSample) string {
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			if k == "le" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k + "=" + s.Labels[k] + ";")
		}
		return b.String()
	}
	get := func(s PromSample) *hseries {
		k := keyOf(s)
		h := byKey[k]
		if h == nil {
			h = &hseries{}
			byKey[k] = h
		}
		return h
	}
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", fam.Name)
			}
			h := get(s)
			if le == "+Inf" {
				h.hasInf = true
				h.inf = s.Value
				continue
			}
			ub, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", fam.Name, le)
			}
			h.le = append(h.le, ub)
			h.cum = append(h.cum, s.Value)
		case fam.Name + "_count":
			h := get(s)
			h.hasCnt = true
			h.count = s.Value
		}
	}
	for key, h := range byKey {
		prev := math.Inf(-1)
		prevCum := 0.0
		for i, ub := range h.le {
			if ub <= prev {
				return fmt.Errorf("histogram %s{%s}: le bounds not increasing", fam.Name, key)
			}
			if h.cum[i] < prevCum {
				return fmt.Errorf("histogram %s{%s}: buckets not cumulative at le=%v", fam.Name, key, ub)
			}
			prev, prevCum = ub, h.cum[i]
		}
		if !h.hasInf {
			return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", fam.Name, key)
		}
		if h.inf < prevCum {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket below last bucket", fam.Name, key)
		}
		if !h.hasCnt {
			return fmt.Errorf("histogram %s{%s}: missing _count", fam.Name, key)
		}
		if h.inf != h.count {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != _count %v", fam.Name, key, h.inf, h.count)
		}
	}
	return nil
}
