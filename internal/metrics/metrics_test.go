package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestRegistrationIdempotentAndTyped(t *testing.T) {
	g := New()
	g.Reset(2)
	c1 := g.Counter("x_total", Opts{Help: "first"})
	c2 := g.Counter("x_total", Opts{Help: "second (ignored)"})
	c1.Add(0, 1)
	c2.Add(0, 2)
	if v := g.CounterValue("x_total", 0); v != 3 {
		t.Errorf("idempotent handles should share storage: got %v, want 3", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	g.Gauge("x_total", Opts{})
}

func TestCounterGaugeHistogramOps(t *testing.T) {
	g := New()
	g.Reset(3)
	c := g.Counter("msgs_total", Opts{Labels: []Label{{Name: "phase"}, {Name: "tag"}}})
	c.Add2(1, 0, 5, 2)
	c.Add2(1, 0, 5, 3)
	c.Add2(1, 2, 5, 7)
	if v := g.CounterValue("msgs_total", 1, 0, 5); v != 5 {
		t.Errorf("counter = %v, want 5", v)
	}
	if v := g.SumSeries("msgs_total", 1); v != 12 {
		t.Errorf("SumSeries = %v, want 12", v)
	}
	if v := g.SumSeries("msgs_total", 0); v != 0 {
		t.Errorf("SumSeries on untouched rank = %v, want 0", v)
	}

	ga := g.Gauge("imbalance", Opts{Global: true})
	ga.Set(0, 1.5, 10.25)
	v, ts := g.GaugeValue("imbalance", 0)
	if v != 1.5 || ts != 10.25 {
		t.Errorf("gauge = (%v, %v), want (1.5, 10.25)", v, ts)
	}

	h := g.Histogram("wait_seconds", Opts{Buckets: []float64{1, 10}})
	h.Observe(2, 0.5)
	h.Observe(2, 5)
	h.Observe(2, 50) // overflow: only count and sum
	count, sum := g.HistogramStats("wait_seconds", 2)
	if count != 3 || sum != 55.5 {
		t.Errorf("hist stats = (%v, %v), want (3, 55.5)", count, sum)
	}
}

func TestZeroHandlesAndNilRegistryAreNoOps(t *testing.T) {
	var g *Registry
	g.Counter("a_total", Opts{}).Add(0, 1)
	g.Gauge("b", Opts{}).Set(0, 1, 0)
	g.Histogram("c", Opts{}).Observe(0, 1)
	g.MarkWindowStart(0)
	g.MarkWindowEnd(0)
	if v := g.CounterValue("a_total", 0); v != 0 {
		t.Errorf("nil registry counter = %v", v)
	}
	var c Counter
	c.Add(0, 1) // zero handle must not panic
}

func TestWindowingZeroesAndFreezes(t *testing.T) {
	g := New()
	g.Reset(1)
	w := g.Counter("windowed_total", Opts{Windowed: true})
	n := g.Counter("plain_total", Opts{})
	w.Add(0, 10) // preprocessing: must vanish at window start
	n.Add(0, 10)
	g.MarkWindowStart(0)
	w.Add(0, 3)
	n.Add(0, 3)
	g.MarkWindowEnd(0)
	w.Add(0, 100) // post-window: frozen out
	n.Add(0, 100)
	if v := g.CounterValue("windowed_total", 0); v != 3 {
		t.Errorf("windowed counter = %v, want 3 (zeroed at start, frozen at end)", v)
	}
	if v := g.CounterValue("plain_total", 0); v != 113 {
		t.Errorf("plain counter = %v, want 113", v)
	}
	// A new window reopens the frozen metric.
	g.MarkWindowStart(0)
	w.Add(0, 7)
	if v := g.CounterValue("windowed_total", 0); v != 7 {
		t.Errorf("windowed counter after restart = %v, want 7", v)
	}
}

func TestResetClearsValuesAndResizes(t *testing.T) {
	g := New()
	g.Reset(2)
	c := g.Counter("x_total", Opts{})
	c.Add(1, 5)
	g.Reset(4)
	if v := g.CounterValue("x_total", 1); v != 0 {
		t.Errorf("value survived Reset: %v", v)
	}
	c.Add(3, 2) // rank 3 exists after resize
	if v := g.CounterValue("x_total", 3); v != 2 {
		t.Errorf("counter on new rank = %v, want 2", v)
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	g := New()
	g.Reset(2)
	phase := Label{Name: "phase", Namer: func(p int) string { return []string{"flow", "motion"}[p] }}
	c := g.Counter("overd_msgs_total", Opts{Help: "messages", Labels: []Label{phase}})
	c.Add1(0, 0, 3)
	c.Add1(1, 1, 0.1+0.2) // non-representable sum must round-trip exactly
	ga := g.Gauge("overd_ratio", Opts{Help: "imbalance", Global: true})
	ga.Set(0, 1.0/3.0, 2.5)
	h := g.Histogram("overd_wait_seconds", Opts{Help: "waits", Buckets: []float64{0.001, 1}})
	h.Observe(0, 0.0005)
	h.Observe(0, 0.5)
	h.Observe(0, 2)

	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict parse of own output: %v\n%s", err, buf.String())
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	msgs := byName["overd_msgs_total"]
	if msgs.Type != "counter" || msgs.Help != "messages" || len(msgs.Samples) != 2 {
		t.Fatalf("msgs family = %+v", msgs)
	}
	var got013 bool
	for _, s := range msgs.Samples {
		if s.Labels["rank"] == "1" && s.Labels["phase"] == "motion" {
			if s.Value != 0.1+0.2 {
				t.Errorf("parsed value %v != exact in-process %v", s.Value, 0.1+0.2)
			}
			got013 = true
		}
	}
	if !got013 {
		t.Error("missing rank=1/phase=motion sample")
	}
	ratio := byName["overd_ratio"]
	if len(ratio.Samples) != 1 || ratio.Samples[0].Value != 1.0/3.0 {
		t.Errorf("global gauge round-trip failed: %+v", ratio.Samples)
	}
	if len(ratio.Samples[0].Labels) != 0 {
		t.Errorf("global gauge must have no rank label: %+v", ratio.Samples[0].Labels)
	}
	wait := byName["overd_wait_seconds"]
	// Accumulate at runtime in observation order (constant folding would
	// use exact arithmetic and miss the float64 rounding).
	sumWant := 0.0005
	sumWant += 0.5
	sumWant += 2
	wantBuckets := map[string]float64{"0.001": 1, "1": 2, "+Inf": 3}
	for _, s := range wait.Samples {
		if s.Name == "overd_wait_seconds_bucket" {
			if want, ok := wantBuckets[s.Labels["le"]]; !ok || s.Value != want {
				t.Errorf("bucket le=%s = %v, want %v", s.Labels["le"], s.Value, want)
			}
		}
		if s.Name == "overd_wait_seconds_count" && s.Value != 3 {
			t.Errorf("count = %v, want 3", s.Value)
		}
		if s.Name == "overd_wait_seconds_sum" && s.Value != sumWant {
			t.Errorf("sum = %v, want %v", s.Value, sumWant)
		}
	}
}

func TestPrometheusOutputDeterministic(t *testing.T) {
	emit := func() string {
		g := New()
		g.Reset(3)
		c := g.Counter("b_total", Opts{Labels: []Label{{Name: "tag"}}})
		// Insertion order differs from label order on purpose.
		c.Add1(2, 9, 1)
		c.Add1(0, 4, 1)
		c.Add1(0, 1, 1)
		g.Gauge("a", Opts{}).Set(1, 2, 3)
		var buf bytes.Buffer
		if err := g.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := emit()
	for i := 0; i < 5; i++ {
		if got := emit(); got != first {
			t.Fatalf("non-deterministic output:\n%s\nvs\n%s", first, got)
		}
	}
	if !strings.HasPrefix(first, "# TYPE a gauge") {
		t.Errorf("metrics not sorted by name:\n%s", first)
	}
}

func TestNonFiniteSanitizedInExports(t *testing.T) {
	g := New()
	g.Reset(1)
	g.Gauge("bad", Opts{}).Set(0, math.NaN(), math.Inf(1))
	var prom, js bytes.Buffer
	if err := g.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prom.String(), "NaN") || strings.Contains(prom.String(), "Inf") {
		t.Errorf("non-finite leaked into Prometheus output:\n%s", prom.String())
	}
	if err := g.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("JSON export not valid JSON: %v", err)
	}
	if strings.Contains(js.String(), "NaN") {
		t.Errorf("NaN leaked into JSON output:\n%s", js.String())
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"sample before TYPE", "x_total 1\n"},
		{"bad metric name", "# TYPE 9bad counter\n9bad 1\n"},
		{"unknown type", "# TYPE x wat\nx 1\n"},
		{"duplicate TYPE", "# TYPE x counter\n# TYPE x counter\n"},
		{"duplicate series", "# TYPE x counter\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n"},
		{"negative counter", "# TYPE x counter\nx -1\n"},
		{"bad value", "# TYPE x gauge\nx one\n"},
		{"unquoted label", "# TYPE x gauge\nx{a=1} 1\n"},
		{"unterminated labels", "# TYPE x gauge\nx{a=\"1\" 1\n"},
		{"bad escape", "# TYPE x gauge\nx{a=\"\\q\"} 1\n"},
		{"foreign sample in family", "# TYPE x gauge\ny 1\n"},
		{"histogram missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram non-cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"histogram count mismatch", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
		{"histogram bare sample", "# TYPE h histogram\nh 1\n"},
	}
	for _, c := range cases {
		if _, err := ParsePrometheus(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected parse error, got none", c.name)
		}
	}
}

func TestParsePrometheusAcceptsEscapes(t *testing.T) {
	in := "# HELP x a \\\\ help\n# TYPE x gauge\nx{a=\"q\\\"v\\\\w\\nz\"} 4 1700000000\n"
	fams, err := ParsePrometheus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || len(fams[0].Samples) != 1 {
		t.Fatalf("fams = %+v", fams)
	}
	if got := fams[0].Samples[0].Labels["a"]; got != "q\"v\\w\nz" {
		t.Errorf("label value = %q", got)
	}
}

func TestJSONExportShape(t *testing.T) {
	g := New()
	g.Reset(2)
	g.Counter("c_total", Opts{Help: "c", Windowed: true}).Add(1, 4)
	g.Gauge("g", Opts{}).Set(0, 7, 1.25)
	h := g.Histogram("h_seconds", Opts{Buckets: []float64{1}})
	h.Observe(0, 0.5)
	h.Observe(0, 3)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name     string    `json:"name"`
			Type     string    `json:"type"`
			Windowed bool      `json:"windowed"`
			BucketLE []float64 `json:"bucket_le"`
			Series   []struct {
				Labels  map[string]string `json:"labels"`
				Value   float64           `json:"value"`
				VTS     *float64          `json:"vts"`
				Buckets []float64         `json:"buckets"`
				Count   *float64          `json:"count"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics) != 3 {
		t.Fatalf("got %d metrics", len(doc.Metrics))
	}
	// Sorted by name: c_total, g, h_seconds.
	if doc.Metrics[0].Name != "c_total" || !doc.Metrics[0].Windowed {
		t.Errorf("metric 0 = %+v", doc.Metrics[0])
	}
	if doc.Metrics[0].Series[0].Labels["rank"] != "1" || doc.Metrics[0].Series[0].Value != 4 {
		t.Errorf("counter series = %+v", doc.Metrics[0].Series[0])
	}
	if vts := doc.Metrics[1].Series[0].VTS; vts == nil || *vts != 1.25 {
		t.Errorf("gauge vts = %v", vts)
	}
	hm := doc.Metrics[2]
	if len(hm.BucketLE) != 1 || hm.BucketLE[0] != 1 {
		t.Errorf("bucket_le = %v", hm.BucketLE)
	}
	hs := hm.Series[0]
	if hs.Value != 3.5 || hs.Count == nil || *hs.Count != 2 || len(hs.Buckets) != 1 || hs.Buckets[0] != 1 {
		t.Errorf("hist series = %+v", hs)
	}
}
