package metrics

import (
	"strconv"

	"overd/internal/trace"
)

// RollupTrace publishes gauges derived from a trace.Summary so the metrics
// plane and the trace plane reconcile by construction: values are copied
// (never recomputed) from the summary, so every exported rollup gauge is
// bit-identical to the corresponding Summary field. phaseName labels the
// phase dimension (nil falls back to decimal).
//
// Published metrics (all gauges stamped with the summary's window end):
//
//	overd_trace_phase_{busy,recv_wait,barrier_wait,fault_wait}_seconds{rank,phase}
//	overd_trace_rank_{busy,recv_wait,barrier_wait,fault_wait}_seconds{rank}
//	overd_trace_rank_msgs_sent{rank}, overd_trace_rank_bytes_sent{rank}
//	overd_trace_window_seconds
func RollupTrace(g *Registry, s *trace.Summary, phaseName func(int) string) {
	if g == nil || s == nil {
		return
	}
	if phaseName == nil {
		phaseName = strconv.Itoa
	}
	phased := func(name, help string) Gauge {
		return g.Gauge(name, Opts{Help: help, Labels: []Label{{Name: "phase", Namer: phaseName}}})
	}
	flat := func(name, help string) Gauge {
		return g.Gauge(name, Opts{Help: help})
	}
	pBusy := phased("overd_trace_phase_busy_seconds", "busy virtual seconds per rank and phase in the trace window")
	pRecv := phased("overd_trace_phase_recv_wait_seconds", "receive-wait virtual seconds per rank and phase in the trace window")
	pBar := phased("overd_trace_phase_barrier_wait_seconds", "barrier-wait virtual seconds per rank and phase in the trace window")
	pFault := phased("overd_trace_phase_fault_wait_seconds", "fault-wait virtual seconds per rank and phase in the trace window")
	rBusy := flat("overd_trace_rank_busy_seconds", "busy virtual seconds per rank in the trace window")
	rRecv := flat("overd_trace_rank_recv_wait_seconds", "receive-wait virtual seconds per rank in the trace window")
	rBar := flat("overd_trace_rank_barrier_wait_seconds", "barrier-wait virtual seconds per rank in the trace window")
	rFault := flat("overd_trace_rank_fault_wait_seconds", "fault-wait virtual seconds per rank in the trace window")
	rMsgs := flat("overd_trace_rank_msgs_sent", "messages sent per rank in the trace window")
	rBytes := flat("overd_trace_rank_bytes_sent", "bytes sent per rank in the trace window")
	win := g.Gauge("overd_trace_window_seconds", Opts{Help: "trace window length in virtual seconds", Global: true})

	ts := s.WindowEnd
	win.Set(0, s.WindowEnd-s.WindowStart, ts)
	for _, rs := range s.Ranks {
		r := rs.Rank
		for p, pb := range rs.ByPhase {
			if pb.Total() == 0 && pb.Busy == 0 {
				continue
			}
			pBusy.Set1(r, p, pb.Busy, ts)
			pRecv.Set1(r, p, pb.RecvWait, ts)
			pBar.Set1(r, p, pb.BarrierWait, ts)
			pFault.Set1(r, p, pb.FaultWait, ts)
		}
		rBusy.Set(r, rs.Busy, ts)
		rRecv.Set(r, rs.RecvWait, ts)
		rBar.Set(r, rs.BarrierWait, ts)
		rFault.Set(r, rs.FaultWait, ts)
		rMsgs.Set(r, float64(rs.MsgsSent), ts)
		rBytes.Set(r, float64(rs.BytesSent), ts)
	}
}
