// Package metrics is a deterministic, virtual-time metrics registry for the
// simulated overset runtime.
//
// Metrics are typed (counter, gauge, histogram) and keyed by rank plus up to
// two small integer labels (phase, tag, grid, ...). Values live in per-metric
// per-rank shards so each simulated rank writes without contending with its
// peers; a per-shard mutex only matters when a live HTTP scrape (-serve)
// reads while ranks write. Everything is observation-only: nothing here reads
// or advances virtual clocks, so runs are bit-identical with the registry
// attached or absent. When no registry is attached the runtime pays a single
// nil check per would-be observation (the same contract as internal/trace).
//
// Windowed metrics reconcile exactly with trace.Summarize over the
// measurement window: MarkWindowStart zeroes their values (so in-window
// float additions happen in the same order the trace analyzer accumulates
// clipped events) and MarkWindowEnd freezes a snapshot, hiding any
// post-window collective activity from export.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Kind enumerates metric types.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind%d", int(k))
}

// Label describes one small-integer label dimension. Namer renders the raw
// int for export; nil means decimal.
type Label struct {
	Name  string
	Namer func(int) string
}

// Opts configures a metric at registration time.
type Opts struct {
	// Help is the one-line description exported as # HELP.
	Help string
	// Windowed metrics participate in MarkWindowStart/MarkWindowEnd:
	// values reset to zero at window start and freeze at window end, so
	// they cover exactly the measured-step window (like trace.Summary).
	Windowed bool
	// Global metrics have a single shard (no rank label); only rank 0
	// should write them.
	Global bool
	// Buckets are the histogram upper bounds (ascending). Ignored for
	// counters and gauges. Defaults to DefTimeBuckets.
	Buckets []float64
	// Labels are the extra label dimensions after rank (at most 2).
	Labels []Label
}

// DefTimeBuckets is the default histogram layout, tuned for virtual-second
// wait times on the modeled machines (microseconds to tens of seconds).
var DefTimeBuckets = []float64{
	1e-6, 2.5e-6, 1e-5, 2.5e-5, 1e-4, 2.5e-4,
	1e-3, 2.5e-3, 1e-2, 2.5e-2, 0.1, 0.25, 1, 2.5, 10,
}

// shard holds the series of one metric for one rank. idx maps the packed
// label key to a series index; vals is series-major with m.width slots per
// series. fin is the frozen copy taken at MarkWindowEnd for windowed
// metrics.
type shard struct {
	mu     sync.Mutex
	idx    map[uint64]int
	keys   []uint64
	labs   [][2]int32
	vals   []float64
	fin    []float64
	hasFin bool
}

type metric struct {
	name   string
	kind   Kind
	opts   Opts
	width  int // value slots per series
	shards []shard
}

// Registry is a set of metrics shared by one run. The zero value is not
// usable; call New. A nil *Registry is a valid "disabled" registry for the
// read-side helpers, but instrumented packages must nil-check before
// registering or writing.
type Registry struct {
	mu     sync.Mutex
	nRanks int
	byName map[string]*metric
	order  []*metric
}

// New returns an empty registry. Attach it to a run (which calls Reset with
// the world size) before ranks write.
func New() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// Reset reallocates every registered metric's shards for a world of n ranks
// and clears all values. The runtime calls it when a world attaches the
// registry, including on crash-restart attempts, so exported values always
// describe the final attempt (matching trace semantics).
func (g *Registry) Reset(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nRanks = n
	for _, m := range g.order {
		m.shards = make([]shard, m.shardCount(n))
	}
}

// NRanks reports the world size from the last Reset.
func (g *Registry) NRanks() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.nRanks
}

func (m *metric) shardCount(n int) int {
	if m.opts.Global {
		return 1
	}
	return n
}

func widthFor(kind Kind, o *Opts) int {
	switch kind {
	case KindCounter:
		return 1
	case KindGauge:
		return 2 // value, virtual-time timestamp
	default:
		if len(o.Buckets) == 0 {
			o.Buckets = DefTimeBuckets
		}
		// Per-bucket (non-cumulative) counts, then total count, then sum.
		return len(o.Buckets) + 2
	}
}

func (g *Registry) metric(name string, kind Kind, o Opts) *metric {
	if len(o.Labels) > 2 {
		panic("metrics: at most 2 labels after rank are supported")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if m, ok := g.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, kind: kind, opts: o}
	m.width = widthFor(kind, &m.opts)
	m.shards = make([]shard, m.shardCount(g.nRanks))
	g.byName[name] = m
	g.order = append(g.order, m)
	return m
}

// Counter registers (idempotently) and returns a counter handle.
func (g *Registry) Counter(name string, o Opts) Counter {
	if g == nil {
		return Counter{}
	}
	return Counter{g.metric(name, KindCounter, o)}
}

// Gauge registers (idempotently) and returns a gauge handle.
func (g *Registry) Gauge(name string, o Opts) Gauge {
	if g == nil {
		return Gauge{}
	}
	return Gauge{g.metric(name, KindGauge, o)}
}

// Histogram registers (idempotently) and returns a histogram handle.
func (g *Registry) Histogram(name string, o Opts) Histogram {
	if g == nil {
		return Histogram{}
	}
	return Histogram{g.metric(name, KindHistogram, o)}
}

func packKey(nlab int, l0, l1 int32) uint64 {
	switch nlab {
	case 0:
		return 0
	case 1:
		return uint64(uint32(l0))
	default:
		return uint64(uint32(l0))<<32 | uint64(uint32(l1))
	}
}

// slots locates (creating if needed) the value slots for one series and
// returns them with the shard lock held; the caller must call sh.mu.Unlock.
func (m *metric) slots(rank int, l0, l1 int32) (*shard, []float64) {
	if m.opts.Global {
		rank = 0
	}
	sh := &m.shards[rank]
	key := packKey(len(m.opts.Labels), l0, l1)
	sh.mu.Lock()
	i, ok := sh.idx[key]
	if !ok {
		if sh.idx == nil {
			sh.idx = make(map[uint64]int)
		}
		i = len(sh.keys)
		sh.idx[key] = i
		sh.keys = append(sh.keys, key)
		sh.labs = append(sh.labs, [2]int32{l0, l1})
		sh.vals = append(sh.vals, make([]float64, m.width)...)
	}
	return sh, sh.vals[i*m.width : (i+1)*m.width]
}

func (m *metric) checkArity(n int) {
	if len(m.opts.Labels) != n {
		panic(fmt.Sprintf("metrics: %s has %d labels, written with %d", m.name, len(m.opts.Labels), n))
	}
}

// Counter is a monotonically increasing value. The zero Counter is a no-op.
type Counter struct{ m *metric }

func (c Counter) Add(rank int, v float64) {
	if c.m == nil {
		return
	}
	c.m.checkArity(0)
	sh, s := c.m.slots(rank, 0, 0)
	s[0] += v
	sh.mu.Unlock()
}

func (c Counter) Add1(rank, l0 int, v float64) {
	if c.m == nil {
		return
	}
	c.m.checkArity(1)
	sh, s := c.m.slots(rank, int32(l0), 0)
	s[0] += v
	sh.mu.Unlock()
}

func (c Counter) Add2(rank, l0, l1 int, v float64) {
	if c.m == nil {
		return
	}
	c.m.checkArity(2)
	sh, s := c.m.slots(rank, int32(l0), int32(l1))
	s[0] += v
	sh.mu.Unlock()
}

// Gauge is a point-in-time value stamped with the writer's virtual clock.
// The zero Gauge is a no-op.
type Gauge struct{ m *metric }

func (gg Gauge) Set(rank int, v, vclock float64) {
	if gg.m == nil {
		return
	}
	gg.m.checkArity(0)
	sh, s := gg.m.slots(rank, 0, 0)
	s[0], s[1] = v, vclock
	sh.mu.Unlock()
}

func (gg Gauge) Set1(rank, l0 int, v, vclock float64) {
	if gg.m == nil {
		return
	}
	gg.m.checkArity(1)
	sh, s := gg.m.slots(rank, int32(l0), 0)
	s[0], s[1] = v, vclock
	sh.mu.Unlock()
}

func (gg Gauge) Set2(rank, l0, l1 int, v, vclock float64) {
	if gg.m == nil {
		return
	}
	gg.m.checkArity(2)
	sh, s := gg.m.slots(rank, int32(l0), int32(l1))
	s[0], s[1] = v, vclock
	sh.mu.Unlock()
}

// Histogram accumulates observations into fixed buckets plus a count and an
// exact sum. The zero Histogram is a no-op.
type Histogram struct{ m *metric }

func (h Histogram) observe(rank int, l0, l1 int32, v float64) {
	m := h.m
	sh, s := m.slots(rank, l0, l1)
	b := m.opts.Buckets
	for i, ub := range b {
		if v <= ub {
			s[i]++
			break
		}
	}
	s[len(b)]++      // total count (includes +Inf overflow)
	s[len(b)+1] += v // sum, accumulated in observation order
	sh.mu.Unlock()
}

func (h Histogram) Observe(rank int, v float64) {
	if h.m == nil {
		return
	}
	h.m.checkArity(0)
	h.observe(rank, 0, 0, v)
}

func (h Histogram) Observe1(rank, l0 int, v float64) {
	if h.m == nil {
		return
	}
	h.m.checkArity(1)
	h.observe(rank, int32(l0), 0, v)
}

func (h Histogram) Observe2(rank, l0, l1 int, v float64) {
	if h.m == nil {
		return
	}
	h.m.checkArity(2)
	h.observe(rank, int32(l0), int32(l1), v)
}

// MarkWindowStart zeroes every windowed metric's values for rank (keeping
// registered series), so subsequent additions cover exactly the measurement
// window in the same accumulation order trace.Summarize uses. Global
// windowed metrics are handled by rank 0's call.
func (g *Registry) MarkWindowStart(rank int) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.order {
		if !m.opts.Windowed {
			continue
		}
		idx := rank
		if m.opts.Global {
			if rank != 0 {
				continue
			}
			idx = 0
		}
		if idx >= len(m.shards) {
			continue
		}
		sh := &m.shards[idx]
		sh.mu.Lock()
		for i := range sh.vals {
			sh.vals[i] = 0
		}
		sh.fin = sh.fin[:0]
		sh.hasFin = false
		sh.mu.Unlock()
	}
}

// MarkWindowEnd freezes every windowed metric for rank: export and the read
// helpers use the snapshot taken here, hiding post-window activity
// (trailing barriers, post-loop collectives).
func (g *Registry) MarkWindowEnd(rank int) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.order {
		if !m.opts.Windowed {
			continue
		}
		idx := rank
		if m.opts.Global {
			if rank != 0 {
				continue
			}
			idx = 0
		}
		if idx >= len(m.shards) {
			continue
		}
		sh := &m.shards[idx]
		sh.mu.Lock()
		sh.fin = append(sh.fin[:0], sh.vals...)
		sh.hasFin = true
		sh.mu.Unlock()
	}
}

// series is one exported series: resolved labels plus a copy of its value
// slots (window-adjusted for windowed metrics).
type series struct {
	rank int
	labs [2]int32
	vals []float64
}

// snapshot copies one metric's series under the shard locks, in
// deterministic order: rank ascending, then packed label key ascending.
func (m *metric) snapshot() []series {
	var out []series
	for r := range m.shards {
		sh := &m.shards[r]
		sh.mu.Lock()
		src := sh.vals
		if m.opts.Windowed && sh.hasFin {
			src = sh.fin
		}
		ord := make([]int, len(sh.keys))
		for i := range ord {
			ord[i] = i
		}
		keys := sh.keys
		sort.Slice(ord, func(a, b int) bool { return keys[ord[a]] < keys[ord[b]] })
		for _, i := range ord {
			vals := make([]float64, m.width)
			if (i+1)*m.width <= len(src) {
				copy(vals, src[i*m.width:(i+1)*m.width])
			}
			out = append(out, series{rank: r, labs: sh.labs[i], vals: vals})
		}
		sh.mu.Unlock()
	}
	return out
}

// snapshotAll returns all metrics sorted by name with their series.
func (g *Registry) snapshotAll() []*metric {
	g.mu.Lock()
	ms := append([]*metric(nil), g.order...)
	g.mu.Unlock()
	sort.Slice(ms, func(a, b int) bool { return ms[a].name < ms[b].name })
	return ms
}

func (m *metric) labelName(i int) string {
	return m.opts.Labels[i].Name
}

func (m *metric) labelValue(i int, raw int32) string {
	if n := m.opts.Labels[i].Namer; n != nil {
		return n(int(raw))
	}
	return strconv.Itoa(int(raw))
}

// read returns a window-adjusted copy of one series' value slots, or nil if
// the metric or series does not exist.
func (g *Registry) read(name string, rank int, labels []int) ([]float64, *metric) {
	if g == nil {
		return nil, nil
	}
	g.mu.Lock()
	m := g.byName[name]
	g.mu.Unlock()
	if m == nil || len(labels) != len(m.opts.Labels) {
		return nil, nil
	}
	if m.opts.Global {
		rank = 0
	}
	if rank < 0 || rank >= len(m.shards) {
		return nil, nil
	}
	var l0, l1 int32
	if len(labels) > 0 {
		l0 = int32(labels[0])
	}
	if len(labels) > 1 {
		l1 = int32(labels[1])
	}
	key := packKey(len(labels), l0, l1)
	sh := &m.shards[rank]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	i, ok := sh.idx[key]
	if !ok {
		return nil, nil
	}
	src := sh.vals
	if m.opts.Windowed && sh.hasFin {
		src = sh.fin
	}
	out := make([]float64, m.width)
	if (i+1)*m.width <= len(src) {
		copy(out, src[i*m.width:(i+1)*m.width])
	}
	return out, m
}

// CounterValue returns a counter series' value (0 if absent).
func (g *Registry) CounterValue(name string, rank int, labels ...int) float64 {
	s, _ := g.read(name, rank, labels)
	if s == nil {
		return 0
	}
	return s[0]
}

// GaugeValue returns a gauge series' value and virtual-time stamp.
func (g *Registry) GaugeValue(name string, rank int, labels ...int) (v, vclock float64) {
	s, _ := g.read(name, rank, labels)
	if s == nil {
		return 0, 0
	}
	return s[0], s[1]
}

// HistogramStats returns a histogram series' observation count and sum.
func (g *Registry) HistogramStats(name string, rank int, labels ...int) (count, sum float64) {
	s, m := g.read(name, rank, labels)
	if s == nil {
		return 0, 0
	}
	nb := len(m.opts.Buckets)
	return s[nb], s[nb+1]
}

// SumSeries sums slot 0 (counter value / gauge value) across every series of
// the metric for one rank — e.g. total bytes over all (phase, tag) pairs.
func (g *Registry) SumSeries(name string, rank int) float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	m := g.byName[name]
	g.mu.Unlock()
	if m == nil {
		return 0
	}
	if m.opts.Global {
		rank = 0
	}
	if rank < 0 || rank >= len(m.shards) {
		return 0
	}
	sh := &m.shards[rank]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	src := sh.vals
	if m.opts.Windowed && sh.hasFin {
		src = sh.fin
	}
	var tot float64
	for i := 0; i*m.width < len(src); i++ {
		tot += src[i*m.width]
	}
	return tot
}

// sanitize maps non-finite floats to 0 for export, mirroring the root
// package's EmitRowsJSON convention.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
