package overd

import "testing"

// TestTable5FaultedStragglerSignature runs the robustness headline sweep at
// reduced scale and checks its qualitative signature: a rank computing at a
// third of its rated speed must cost the run real virtual time under both
// balancing schemes, and the resulting rows must stay physically sensible.
func TestTable5FaultedStragglerSignature(t *testing.T) {
	if testing.Short() {
		t.Skip("long fault sweep")
	}
	rows, err := runTable5Faulted(Options{Scale: 0.05, Steps: 6}, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Nodes != 16 {
		t.Fatalf("rows %+v", rows)
	}
	r := rows[0]
	if r.SlowdownStat <= 1.02 {
		t.Errorf("static scheme hid a 3x straggler: slowdown %.3f", r.SlowdownStat)
	}
	if r.SlowdownDyn <= 1.0 {
		t.Errorf("dynamic scheme reported a free straggler: slowdown %.3f", r.SlowdownDyn)
	}
	for _, pct := range []float64{r.PctDCFStat, r.PctDCFDyn} {
		if pct <= 0 || pct >= 100 {
			t.Errorf("connectivity share %.1f%% out of range", pct)
		}
	}
}

// TestFaultPlanFacadeRoundTrip exercises the top-level fault-plan facade:
// the Table5FaultPlan must survive a JSON round trip through ParseFaultPlan.
func TestFaultPlanFacadeRoundTrip(t *testing.T) {
	p, err := ParseFaultPlan([]byte(`{
		"seed": 1,
		"stragglers": [{"rank": 1, "factor": 3, "from_step": 2}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	want := Table5FaultPlan()
	if p.Seed != want.Seed || len(p.Stragglers) != 1 ||
		p.Stragglers[0] != want.Stragglers[0] {
		t.Errorf("parsed %+v, want %+v", p, want)
	}
	if _, err := ParseFaultPlan([]byte(`{"stragglers": [{"rank": 0, "factor": 0}]}`)); err == nil {
		t.Error("invalid straggler factor accepted")
	}
}
