package overd

import (
	"math"
	"testing"
)

// TestCriticalPathConnectivityShift reproduces the Table-5 observation on
// the trace layer: enabling the dynamic scheme (fo = 5) moves connectivity
// wait off the critical path — the path's connect share and %DCF3D both
// drop — while the repartition itself shows up as balance time on the path
// (the paper's conclusion that the scheme costs more overall than it saves).
func TestCriticalPathConnectivityShift(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration")
	}
	run := func(fo float64) (*Result, *TraceCriticalPath) {
		rec := NewTraceRecorder()
		res, err := Run(Config{
			Case: StoreSeparation(0.2), Nodes: 52, Machine: SP2(),
			Steps: 6, Fo: fo, CheckInterval: 3, Trace: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		cp := rec.CriticalPath()
		if math.Abs(cp.Makespan-res.TotalTime) > 1e-9*res.TotalTime {
			t.Fatalf("fo=%v path makespan %.12g != TotalTime %.12g",
				fo, cp.Makespan, res.TotalTime)
		}
		rank, _, sec := cp.Dominant()
		if rank < 0 || sec <= 0 {
			t.Fatalf("fo=%v path has no dominant rank/phase", fo)
		}
		return res, cp
	}
	resStat, cpStat := run(math.Inf(1))
	resDyn, cpDyn := run(5)
	if resDyn.Rebalances == 0 {
		t.Skip("imbalance below fo=5 threshold at this scale")
	}
	// PhaseConnect is core phase 2 on the path; compare its on-path seconds.
	connStat := cpStat.TimeByPhase()[2]
	connDyn := cpDyn.TimeByPhase()[2]
	if connDyn >= connStat {
		t.Errorf("connect time on critical path did not shrink: static %.4gs dynamic %.4gs",
			connStat, connDyn)
	}
	if resDyn.PctConnect() >= resStat.PctConnect() {
		t.Errorf("%%DCF3D did not drop: static %.1f%% dynamic %.1f%%",
			resStat.PctConnect(), resDyn.PctConnect())
	}
}
